package service

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"segrid/internal/faultinject"
)

// This file is the work-unit scheduler's service-level acceptance suite:
// a large multi-group sweep sharing the solver workers with a stream of
// small verifies. Before the scheduler, the sweep held one opaque solve
// slot for its whole batch and small requests queued behind it; now the
// sweep decomposes into per-group units and the deficit-round-robin policy
// interleaves the verifies. The tests assert the three properties the
// refactor must preserve or deliver:
//
//   - bounded small-request latency: verifies issued mid-sweep finish while
//     the sweep is still in flight (structural, not wall-clock, so the
//     assertion holds on a loaded single-core CI box);
//   - verdict equality: every mixed-load answer equals its isolated
//     sequential baseline — fairness never changes an answer;
//   - exactly-once lease settlement: every pool checkout is returned or
//     discarded exactly once, even with group units running concurrently.
//
// The mixed load drives the in-process API (svc.Verify / svc.Sweep): the
// work still runs as scheduler units exactly like HTTP traffic, but the
// interleaving observations are not distorted by HTTP connection setup,
// which on a single-CPU runner costs more than a whole warm solve.

// mixedSweepRequest builds a sweep that plans into six groups (goal
// replacement re-specs each target into its own group) with secured-id
// overlay items per group — enough unit-queue depth that both scheduler
// workers stay busy while units remain queued. ids caps the overlay spread
// per group: 40 makes the sweep outweigh a small verify by two orders of
// magnitude; smaller values keep the fault-injection variant quick.
func mixedSweepRequest(ids int) SweepRequest {
	var items []SweepItem
	for _, target := range []int{12, 9, 13, 4, 7, 10} {
		tgt := []int{target}
		items = append(items, SweepItem{Targets: tgt})
		for id := 1; id <= ids; id++ {
			items = append(items, SweepItem{Targets: tgt, SecuredMeasurements: []int{id, 46}})
			items = append(items, SweepItem{Targets: tgt, SecuredMeasurements: []int{id}})
		}
		items = append(items, SweepItem{Targets: tgt, SecuredBuses: []int{1, 3}})
	}
	return SweepRequest{Attack: obj2Spec(), Items: items}
}

// mixedBaseline folds every sweep item into a standalone verify on a fresh
// idle server and returns the per-item answers — the sequential ground
// truth the mixed-load answers must match.
func mixedBaseline(t *testing.T, sweepReq *SweepRequest) []*VerifyResponse {
	t.Helper()
	svc, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	out := make([]*VerifyResponse, len(sweepReq.Items))
	for i, it := range sweepReq.Items {
		spec := obj2Spec()
		spec.Targets = it.Targets
		r, err := svc.Verify(context.Background(), &VerifyRequest{
			Attack:              spec,
			SecuredMeasurements: it.SecuredMeasurements,
			SecuredBuses:        it.SecuredBuses,
		})
		if err != nil {
			t.Fatalf("baseline item %d: %v", i, err)
		}
		out[i] = r
	}
	return out
}

// TestMixedLoadVerifyNotStarvedBehindSweep drives the headline scenario on
// two scheduler workers: a 6-group, ~490-item sweep is in flight, and small
// verifies arriving behind it are answered before the sweep completes, with
// verdicts identical to an idle-server baseline.
func TestMixedLoadVerifyNotStarvedBehindSweep(t *testing.T) {
	sweepReq := mixedSweepRequest(40)
	baseline := mixedBaseline(t, &sweepReq)

	svc, err := New(Config{
		MaxConcurrent: 4,
		SchedWorkers:  2,
		MaxQueue:      64,
		QueueWait:     5 * time.Second,
		MaxSweepItems: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	smallBase, err := svc.Verify(context.Background(), &VerifyRequest{Attack: obj2Spec()})
	if err != nil {
		t.Fatal(err)
	}
	smallSecBase, err := svc.Verify(context.Background(), &VerifyRequest{Attack: obj2Spec(), SecuredMeasurements: []int{46}})
	if err != nil {
		t.Fatal(err)
	}

	var (
		sweepDone atomic.Bool
		sweepResp *SweepResponse
		wg        sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		r, err := svc.Sweep(context.Background(), &sweepReq)
		if err != nil {
			t.Error(err)
		}
		sweepResp = r
		sweepDone.Store(true)
	}()

	// Wait until the sweep's units actually occupy the scheduler, so the
	// verifies below genuinely arrive behind it.
	for deadline := time.Now().Add(5 * time.Second); ; {
		st := svc.SchedStats()
		if st.Running > 0 || st.Queued > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep units never reached the scheduler")
		}
		time.Sleep(100 * time.Microsecond)
	}

	const smallN = 8
	beforeSweepEnd := make([]bool, smallN)
	small := make([]*VerifyResponse, smallN)
	for i := 0; i < smallN; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := VerifyRequest{Attack: obj2Spec()}
			if i%2 == 1 {
				req.SecuredMeasurements = []int{46}
			}
			r, err := svc.Verify(context.Background(), &req)
			if err != nil {
				t.Error(err)
				return
			}
			small[i] = r
			beforeSweepEnd[i] = !sweepDone.Load()
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Verdict equality for the small stream against the idle baseline.
	for i, got := range small {
		want := smallBase
		if i%2 == 1 {
			want = smallSecBase
		}
		if got.Status != want.Status {
			t.Fatalf("small verify %d under load says %s, idle baseline says %s", i, got.Status, want.Status)
		}
	}
	// Verdict equality for the sweep against its folded sequential answers.
	if sweepResp.Groups != 6 {
		t.Fatalf("sweep planned %d groups, want 6 (one per target)", sweepResp.Groups)
	}
	for i, got := range sweepResp.Items {
		if got.Status != baseline[i].Status {
			t.Fatalf("sweep item %d says %s, sequential baseline says %s", i, got.Status, baseline[i].Status)
		}
	}

	// Bounded latency, structurally: the sweep outweighs the small stream
	// by two orders of magnitude of solve work, so fair scheduling must
	// finish most small verifies while the sweep is still in flight. A
	// starving scheduler (the old one-slot-per-request semantics) finishes
	// all of them after it.
	finished := 0
	for _, b := range beforeSweepEnd {
		if b {
			finished++
		}
	}
	if finished < smallN/2 {
		t.Fatalf("only %d/%d small verifies finished while the sweep was in flight — small requests are starving", finished, smallN)
	}

	// Exactly-once lease settlement: every successful checkout was settled
	// by exactly one Return or Discard once all requests are done.
	ps := svc.PoolStats()
	if got, want := ps.Returns+ps.Discards, ps.Hits+ps.Misses; got != want {
		t.Fatalf("lease ledger: %d settlements for %d checkouts (%+v)", got, want, ps)
	}
	// The sweep ran through the scheduler, not around it.
	if st := svc.SchedStats(); st.UnitsRun < 6 {
		t.Fatalf("scheduler ran %d units, want at least the sweep's 6 group units (%+v)", st.UnitsRun, st)
	}
}

// TestMixedLoadFaultInjection repeats the mixed scenario with injected
// encoder poisonings and stalls: definite answers must still equal the
// fault-free baseline, and every lease must still settle exactly once.
// Faults may cost retries or inconclusive answers, never a flipped verdict
// or a leaked lease. Runs under -race in CI.
func TestMixedLoadFaultInjection(t *testing.T) {
	sweepReq := mixedSweepRequest(8)
	baseline := mixedBaseline(t, &sweepReq)

	svc, err := New(Config{
		MaxConcurrent:  4,
		SchedWorkers:   2,
		MaxQueue:       64,
		QueueWait:      5 * time.Second,
		DefaultTimeout: 5 * time.Second,
		Faults: faultinject.New(20260807, faultinject.Config{
			PPoison:       0.15,
			PStall:        0.05,
			MaxAfterPolls: 64,
			StallFor:      200 * time.Microsecond,
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	smallBase := baseline[0] // item 0 is the unmodified base spec

	var wg sync.WaitGroup
	var sweepResp *SweepResponse
	wg.Add(1)
	go func() {
		defer wg.Done()
		r, err := svc.Sweep(context.Background(), &sweepReq)
		if err != nil {
			t.Error(err)
		}
		sweepResp = r
	}()
	const smallN = 6
	small := make([]*VerifyResponse, smallN)
	for i := 0; i < smallN; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := svc.Verify(context.Background(), &VerifyRequest{Attack: obj2Spec()})
			if err != nil {
				t.Error(err)
				return
			}
			small[i] = r
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for i, got := range sweepResp.Items {
		if got.Status != "inconclusive" && got.Status != baseline[i].Status {
			t.Fatalf("faulted sweep item %d says %s, fault-free baseline says %s", i, got.Status, baseline[i].Status)
		}
	}
	for i, got := range small {
		if got.Status != "inconclusive" && got.Status != smallBase.Status {
			t.Fatalf("faulted small verify %d says %s, fault-free baseline says %s", i, got.Status, smallBase.Status)
		}
	}
	ps := svc.PoolStats()
	if got, want := ps.Returns+ps.Discards, ps.Hits+ps.Misses; got != want {
		t.Fatalf("lease ledger under faults: %d settlements for %d checkouts (%+v)", got, want, ps)
	}
}

// TestSchedPortfolioSharedWorkers checks a portfolio verify on the shared
// scheduler: forks run as work units on the common worker set (plus the
// orchestrating unit helping inline), and the verdict equals the sequential
// answer. This is the tentpole's "no private fleets" property: the only
// goroutines solving are the scheduler's.
func TestSchedPortfolioSharedWorkers(t *testing.T) {
	seqSvc, err := New(Config{Portfolio: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := seqSvc.Verify(context.Background(), &VerifyRequest{Attack: obj2Spec(), SecuredMeasurements: []int{46}})
	seqSvc.Close()
	if err != nil {
		t.Fatal(err)
	}

	svc, err := New(Config{SchedWorkers: 2, Portfolio: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	got, err := svc.Verify(context.Background(), &VerifyRequest{Attack: obj2Spec(), SecuredMeasurements: []int{46}})
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != want.Status {
		t.Fatalf("portfolio on shared workers says %s, sequential says %s", got.Status, want.Status)
	}

	st := svc.SchedStats()
	// One orchestration unit plus three fork units were executed somewhere:
	// by the two workers or inline by the helping orchestration unit.
	if st.UnitsRun+st.UnitsInline < 4 {
		t.Fatalf("scheduler executed %d worker + %d inline units, want >= 4 (%+v)", st.UnitsRun, st.UnitsInline, st)
	}
	m := svc.m.snapshot(svc.PoolStats(), 0, st, svc.supports.Stats())
	if m.PortfolioChecks == 0 {
		t.Fatal("portfolio race never ran")
	}
}
