package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/big"

	"segrid/internal/pool"
	"segrid/internal/scenariofile"
	"segrid/internal/smt"
)

// VerifyRequest is the body of POST /v1/verify: an attack scenario in the
// scenariofile format plus per-request service controls.
type VerifyRequest struct {
	// Attack is the scenario to verify, exactly as ufdiverify reads it.
	Attack scenariofile.AttackSpec `json:"attack"`

	// SecuredBuses and SecuredMeasurements overlay extra protections on the
	// scenario for this request only. They are asserted in a solver scope on
	// top of the warm encoder, so requests differing only in overlay share
	// one pooled encoder — the synthesis-style what-if query the warm pool
	// exists for.
	SecuredBuses        []int `json:"securedBuses,omitempty"`
	SecuredMeasurements []int `json:"securedMeasurements,omitempty"`

	// TimeoutMs bounds the request wall clock (0: the server default). The
	// deadline propagates into the solver; an expired request reports
	// inconclusive, never a guessed verdict.
	TimeoutMs int `json:"timeoutMs,omitempty"`

	// FreshEncode skips the warm pool and builds a throwaway encoder with
	// FreshPerCheck semantics — the differential-testing escape hatch.
	FreshEncode bool `json:"freshEncode,omitempty"`

	// Proof requests an UNSAT certificate when the attack is infeasible.
	// Proof-producing checks always run on a fresh encoder (a certificate
	// stream captures a solver's whole lifetime, which is incompatible with
	// warm reuse); the certificate is published atomically under the
	// server's proof directory only when complete and the verdict is
	// infeasible.
	Proof bool `json:"proof,omitempty"`

	// Portfolio overrides the server's portfolio worker count for this
	// request: > 1 races that many diversified solver instances, 1 forces a
	// sequential answer, < 0 picks the host default, 0 keeps the server
	// configuration. Always clamped to the server's per-request maximum.
	Portfolio int `json:"portfolio,omitempty"`

	// Screen overrides the server's LP-relaxation screening default for
	// this request: true runs the screen even on a server with screening
	// off, false forces the full SMT pipeline (the ablation switch), nil
	// keeps the server configuration. Proof and freshEncode requests are
	// never screened — both explicitly ask for solver artifacts.
	Screen *bool `json:"screen,omitempty"`
}

// VerifyResponse is the body of a completed verification.
type VerifyResponse struct {
	// Status is "feasible", "infeasible" or "inconclusive".
	Status string `json:"status"`

	// Why and UnknownReason explain an inconclusive verdict: Why is the
	// human-readable cause, UnknownReason the machine-readable class
	// (smt.UnknownReason tokens, e.g. "budget-conflicts", "deadline").
	Why           string `json:"why,omitempty"`
	UnknownReason string `json:"unknownReason,omitempty"`

	// Warm reports whether the answering encoder came from the warm pool;
	// Retries counts fallback attempts before this answer (0: first try).
	Warm    bool `json:"warm"`
	Retries int  `json:"retries"`

	// Screened reports that the LP-relaxation screening tier answered this
	// request definitively — no encoder was built or leased and the SMT
	// solver never ran. Screened verdicts are certifying: an infeasible
	// answer is backed by a rational Farkas certificate, a feasible one by
	// an exact replay of the relaxation vertex against the full model's
	// semantics.
	Screened bool `json:"screened,omitempty"`

	// Attack vector, present when Status is "feasible".
	AlteredMeasurements []int             `json:"alteredMeasurements,omitempty"`
	CompromisedBuses    []int             `json:"compromisedBuses,omitempty"`
	ExcludedLines       []int             `json:"excludedLines,omitempty"`
	IncludedLines       []int             `json:"includedLines,omitempty"`
	StateChanges        map[string]string `json:"stateChanges,omitempty"`

	// ProofFile is the published certificate path (infeasible + proof
	// requested + stream completed). ProofError reports a certificate
	// stream that failed; the verdict itself is unaffected.
	ProofFile  string `json:"proofFile,omitempty"`
	ProofError string `json:"proofError,omitempty"`

	ElapsedMs int64 `json:"elapsedMs"`
}

// SweepRequest is the body of POST /v1/sweep: one base attack scenario plus
// a list of per-item deltas — the Algorithm 1 / Fig. 4–5 workload shape,
// where a whole family of (grid, goal, resource-bound) scenarios differs
// only in small per-scenario knobs. The service groups items by warm-encoder
// compatibility key and runs each group back-to-back on a single pooled
// encoder, so an N-item family that a batch-unaware client would answer
// with N encoder builds costs one build per distinct group.
//
// A sweep occupies one solve slot (admission control sees one request) and
// its items solve sequentially on their group's encoder.
type SweepRequest struct {
	// Attack is the base scenario every item starts from.
	Attack scenariofile.AttackSpec `json:"attack"`

	// Items are the per-scenario deltas, answered in order.
	Items []SweepItem `json:"items"`

	// TimeoutMs bounds the whole sweep's wall clock (0: the server
	// default). When the deadline expires mid-sweep, items already decided
	// keep their verdicts and every remaining item reports inconclusive
	// with the deadline reason — never a partial guess.
	TimeoutMs int `json:"timeoutMs,omitempty"`

	// Screen overrides the server's LP-relaxation screening default for
	// every item of this sweep (same convention as VerifyRequest.Screen).
	// Items the screen answers definitively carry "screened": true and
	// never occupy their group's encoder.
	Screen *bool `json:"screen,omitempty"`
}

// SweepItem is one scenario delta against the sweep's base attack spec.
//
// Secured sets and tightened resource bounds are asserted as scoped overlays
// on the group's warm encoder (they only shrink the feasible set, so a
// Push/Pop scope answers them exactly). Goal replacement and bound
// loosening change the encoded model itself, so such items land in their
// own (topology, shape) group with a separately built encoder — same
// verdicts as N sequential /v1/verify calls, just grouped as tightly as
// soundness allows.
type SweepItem struct {
	// SecuredBuses / SecuredMeasurements add integrity protections for this
	// item only (the same overlay semantics as VerifyRequest).
	SecuredBuses        []int `json:"securedBuses,omitempty"`
	SecuredMeasurements []int `json:"securedMeasurements,omitempty"`

	// MaxAlteredMeasurements / MaxCompromisedBuses override the base
	// spec's resource bounds for this item. nil inherits the base bound; 0
	// lifts it (unbounded). A bound tighter than the base (or a bound on
	// an unbounded base) is answered in-scope on the group encoder; a
	// looser bound re-groups the item under its own spec.
	MaxAlteredMeasurements *int `json:"maxAlteredMeasurements,omitempty"`
	MaxCompromisedBuses    *int `json:"maxCompromisedBuses,omitempty"`

	// Targets replaces the base spec's target-state set for this item
	// (nil inherits). Goal changes always re-group.
	Targets []int `json:"targets,omitempty"`
}

// SweepResponse is the body of a completed sweep.
type SweepResponse struct {
	// Items holds one VerifyResponse per request item, in request order.
	// Per-item ElapsedMs is the item's own solve time.
	Items []*VerifyResponse `json:"items"`

	// Groups is the number of distinct encoder-compatibility groups the
	// items collapsed into; EncoderBuilds counts cold encoder builds the
	// sweep actually performed (groups served warm from the pool build
	// nothing).
	Groups        int `json:"groups"`
	EncoderBuilds int `json:"encoderBuilds"`

	ElapsedMs int64 `json:"elapsedMs"`
}

// SynthesizeRequest is the body of POST /v1/synthesize: a synthesis spec in
// the scenariofile format plus service controls.
type SynthesizeRequest struct {
	Synthesis scenariofile.SynthesisSpec `json:"synthesis"`
	TimeoutMs int                        `json:"timeoutMs,omitempty"`
	// Proof streams per-attack-model UNSAT certificates to the server's
	// proof directory, tagged with the request id.
	Proof bool `json:"proof,omitempty"`

	// CubeWorkers overrides the server's cube-and-conquer worker count for
	// this bus-granular synthesis request (same convention as
	// VerifyRequest.Portfolio; ignored by measurement-granular synthesis).
	CubeWorkers int `json:"cubeWorkers,omitempty"`
}

// SynthesizeResponse is the body of a completed synthesis run.
type SynthesizeResponse struct {
	// Status is "found", "impossible" (proof that no architecture exists)
	// or "inconclusive" (search gave up: iteration/time budget, deadline).
	Status string `json:"status"`
	Why    string `json:"why,omitempty"`

	SecuredBuses        []int `json:"securedBuses,omitempty"`
	SecuredMeasurements []int `json:"securedMeasurements,omitempty"`
	Iterations          int   `json:"iterations,omitempty"`

	ProofFiles []string `json:"proofFiles,omitempty"`
	ElapsedMs  int64    `json:"elapsedMs"`
}

// ProofCheckRequest is the body of POST /v1/proofcheck. Path is resolved
// inside the server's proof directory; absolute paths and traversal outside
// it are rejected.
type ProofCheckRequest struct {
	Path string `json:"path"`
}

// ProofCheckResponse reports an independent certificate re-check.
type ProofCheckResponse struct {
	Valid        bool   `json:"valid"`
	Error        string `json:"error,omitempty"`
	Records      int    `json:"records,omitempty"`
	UnsatChecks  int    `json:"unsatChecks,omitempty"`
	TheoryLemmas int    `json:"theoryLemmas,omitempty"`
}

// errorResponse is the body of every non-2xx answer.
type errorResponse struct {
	Error string `json:"error"`
	// RetryAfterSeconds accompanies 429/503 shed responses (also sent as a
	// Retry-After header): the request was not processed and may be
	// retried. The header and this field are whole seconds rounded up (the
	// Retry-After grammar requires integral seconds); RetryAfterMs carries
	// the undistorted wait so sub-second queue drains are not advertised as
	// a full second to clients that can use the precision.
	RetryAfterSeconds int   `json:"retryAfterSeconds,omitempty"`
	RetryAfterMs      int64 `json:"retryAfterMs,omitempty"`
}

// decodeStrict decodes JSON rejecting unknown fields, mirroring the
// scenariofile contract: a typo must fail loudly, not silently weaken the
// attack model being analyzed.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	// Trailing garbage after the JSON value is a malformed request too.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return fmt.Errorf("trailing data after JSON body")
	}
	return nil
}

// poolKey fingerprints the attack spec into the warm-encoder compatibility
// key: Topology identifies the network, Shape the full attack-model
// structure lowered into the encoder. Per-request overlays (secured buses /
// measurements) are applied in a solver scope and deliberately not part of
// the key. Hashing the canonical re-marshaled spec means two requests share
// an encoder exactly when their specs are field-for-field identical.
func poolKey(spec *scenariofile.AttackSpec) (pool.Key, error) {
	var key pool.Key
	switch {
	case spec.Case != "":
		key.Topology = spec.Case
	default:
		lines, err := json.Marshal(spec.Lines)
		if err != nil {
			return key, err
		}
		sum := sha256.Sum256(lines)
		key.Topology = fmt.Sprintf("custom-%d-%s", spec.Buses, hex.EncodeToString(sum[:8]))
	}
	canon, err := json.Marshal(spec)
	if err != nil {
		return key, err
	}
	sum := sha256.Sum256(canon)
	key.Shape = hex.EncodeToString(sum[:16])
	return key, nil
}

// ratMap renders exact model rationals for the wire.
func ratMap(in map[int]*big.Rat) map[string]string {
	if len(in) == 0 {
		return nil
	}
	out := make(map[string]string, len(in))
	for k, v := range in {
		out[fmt.Sprintf("%d", k)] = v.RatString()
	}
	return out
}

// unknownToken maps an smt reason to its wire token, "other" for
// unclassified causes.
func unknownToken(r smt.UnknownReason) string {
	if s := r.String(); s != "" {
		return s
	}
	return smt.ReasonOther.String()
}

// specEqual reports whether two specs re-marshal identically — the sanity
// check behind the key registry (hash collisions must not silently reuse an
// encoder built for a different model).
func specEqual(a, b *scenariofile.AttackSpec) bool {
	ja, errA := json.Marshal(a)
	jb, errB := json.Marshal(b)
	return errA == nil && errB == nil && bytes.Equal(ja, jb)
}
