package se

import (
	"fmt"
	"math"
)

// BadDataReport is the outcome of iterative largest-normalized-residual
// (LNR) bad data identification.
type BadDataReport struct {
	// Removed lists the measurement IDs identified as bad and removed, in
	// removal order.
	Removed []int
	// Final is the estimate over the surviving measurements.
	Final *Solution
}

// IdentifyBadData runs the classical iterative LNR test: estimate, compute
// normalized residuals r_i/√Ω_ii, remove the largest one if it exceeds the
// threshold (typically 3.0), and repeat until clean, unobservable, or
// maxRemove measurements are gone.
//
// The UFDI attacks this repository studies are exactly the injections this
// procedure cannot catch: a stealthy attack leaves every normalized
// residual at its no-attack value (see TestStealthyAttackEvadesLNR).
func (e *Estimator) IdentifyBadData(z []float64, threshold float64, maxRemove int) (*BadDataReport, error) {
	if threshold <= 0 {
		return nil, fmt.Errorf("se: LNR threshold must be positive, got %v", threshold)
	}
	if maxRemove < 0 {
		return nil, fmt.Errorf("se: maxRemove must be non-negative")
	}
	report := &BadDataReport{}
	current := e
	for {
		sol, err := current.Estimate(z)
		if err != nil {
			return nil, err
		}
		report.Final = sol
		if len(report.Removed) >= maxRemove {
			return report, nil
		}
		worstID, worstVal, err := current.largestNormalizedResidual(z, sol)
		if err != nil {
			return nil, err
		}
		if worstVal <= threshold {
			return report, nil
		}
		// Remove the suspect and re-estimate; stop if that would break
		// observability.
		meas := current.meas.Clone()
		if err := meas.Untake(worstID); err != nil {
			return nil, err
		}
		next, err := NewEstimator(meas, Config{RefBus: current.refBus, Sigma: current.sigma})
		if err != nil {
			// Unobservable without the suspect: keep what we have.
			return report, nil
		}
		report.Removed = append(report.Removed, worstID)
		current = next
	}
}

// largestNormalizedResidual computes r_N,i = |r_i|/√Ω_ii with
// Ω = R − H G⁻¹ Hᵀ (uniform weights), returning the measurement ID and
// value of the maximum.
func (e *Estimator) largestNormalizedResidual(z []float64, sol *Solution) (int, float64, error) {
	mRows := len(e.ids)
	// X = G⁻¹ Hᵀ, column by column; S = H X; Ω_ii = σ² − S_ii·σ²·w = σ²(1 − K_ii)
	// with K = H G⁻¹ Hᵀ W and uniform w = 1/σ².
	ht := e.h.Transpose()
	sigma2 := e.sigma * e.sigma
	worstID, worstVal := -1, 0.0
	// Solve G x = htCol for each measurement column lazily: S_ii = h_i · x_i.
	for i := 0; i < mRows; i++ {
		col := make([]float64, ht.Rows())
		for r := 0; r < ht.Rows(); r++ {
			col[r] = ht.At(r, i)
		}
		x, err := e.gain.SolveLU(col)
		if err != nil {
			return 0, 0, fmt.Errorf("se: residual covariance: %w", err)
		}
		sii := 0.0
		for c := 0; c < e.h.Cols(); c++ {
			sii += e.h.At(i, c) * x[c]
		}
		// Ω_ii = σ²(1 − S_ii/σ²·... ) — with uniform weights, K_ii =
		// S_ii·w, so Ω_ii = σ² − S_ii.
		omega := sigma2 - sii
		if omega < 1e-12 {
			// Critical measurement: its residual carries no redundancy and
			// the LNR test cannot judge it.
			continue
		}
		resid := z[e.ids[i]] - sol.Estimated[i]
		norm := math.Abs(resid) / math.Sqrt(omega)
		if norm > worstVal {
			worstVal = norm
			worstID = e.ids[i]
		}
	}
	if worstID < 0 {
		return 0, 0, nil
	}
	return worstID, worstVal, nil
}
