package se

import (
	"math"
	"sort"

	"segrid/internal/dcflow"
	"segrid/internal/grid"
	"segrid/internal/matrix"
)

// ObservableIslands partitions the buses into maximal groups whose
// *relative* states are determined by the taken measurements: within an
// island, every angle difference is observable; across islands, nothing
// ties the angles together. A fully observable system yields one island.
//
// The computation is numerical: two buses belong to the same island iff
// their coordinates agree in every right-null-space direction of the taken
// measurement Jacobian (the angle shifts the measurements cannot see). No
// reference reduction is applied — the global-shift direction moves every
// bus equally and so never splits islands.
func ObservableIslands(meas *grid.MeasurementConfig) ([][]int, error) {
	sys := meas.System()
	full := dcflow.BuildH(sys, nil)
	ids := meas.TakenIDs()
	rows := make([][]float64, len(ids))
	for r, id := range ids {
		row := make([]float64, sys.Buses)
		for c := 0; c < sys.Buses; c++ {
			row[c] = full.At(id-1, c)
		}
		rows[r] = row
	}
	h, err := matrix.FromRows(rows)
	if err != nil {
		return nil, err
	}
	basis := h.NullSpace(1e-9)

	// Union-find over buses: same island iff their coordinates agree (to
	// tolerance) in every null direction.
	parent := make([]int, sys.Buses+1)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	const tol = 1e-6
	sameIsland := func(a, b int) bool {
		for _, vec := range basis {
			if math.Abs(vec[a-1]-vec[b-1]) > tol {
				return false
			}
		}
		return true
	}
	for a := 1; a <= sys.Buses; a++ {
		for b := a + 1; b <= sys.Buses; b++ {
			if find(a) != find(b) && sameIsland(a, b) {
				parent[find(a)] = find(b)
			}
		}
	}
	groups := make(map[int][]int)
	for bus := 1; bus <= sys.Buses; bus++ {
		root := find(bus)
		groups[root] = append(groups[root], bus)
	}
	out := make([][]int, 0, len(groups))
	for _, buses := range groups {
		sort.Ints(buses)
		out = append(out, buses)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out, nil
}

// Observable reports whether the taken measurements make the whole system
// observable (a single island).
func Observable(meas *grid.MeasurementConfig) (bool, error) {
	islands, err := ObservableIslands(meas)
	if err != nil {
		return false, err
	}
	return len(islands) == 1, nil
}
