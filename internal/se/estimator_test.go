package se

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"segrid/internal/dcflow"
	"segrid/internal/grid"
	"segrid/internal/stat"
)

func fullConfig(sys *grid.System) *grid.MeasurementConfig {
	return grid.NewMeasurementConfig(sys)
}

func TestEstimateRecoversTrueState(t *testing.T) {
	for _, name := range []string{"ieee14", "ieee30"} {
		sys, err := grid.Case(name)
		if err != nil {
			t.Fatalf("Case: %v", err)
		}
		meas := fullConfig(sys)
		est, err := NewEstimator(meas, Config{RefBus: 1, Sigma: 0.01})
		if err != nil {
			t.Fatalf("%s: NewEstimator: %v", name, err)
		}
		rng := rand.New(rand.NewSource(1))
		angles := make([]float64, sys.Buses+1)
		for j := 2; j <= sys.Buses; j++ {
			angles[j] = rng.NormFloat64() * 0.2
		}
		z, err := dcflow.MeasureAll(sys, nil, angles)
		if err != nil {
			t.Fatalf("MeasureAll: %v", err)
		}
		sol, err := est.Estimate(z)
		if err != nil {
			t.Fatalf("Estimate: %v", err)
		}
		for j := 1; j <= sys.Buses; j++ {
			if math.Abs(sol.Angles[j]-angles[j]) > 1e-7 {
				t.Fatalf("%s: bus %d angle %v, want %v", name, j, sol.Angles[j], angles[j])
			}
		}
		if sol.ResidualNorm > 1e-8 {
			t.Fatalf("%s: noiseless residual %v, want ~0", name, sol.ResidualNorm)
		}
	}
}

func TestEstimateWithNoiseWithinThreshold(t *testing.T) {
	sys := grid.IEEE14()
	meas := fullConfig(sys)
	const sigma = 0.005
	est, err := NewEstimator(meas, Config{RefBus: 1, Sigma: sigma})
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	det, err := NewDetector(est, 0.01)
	if err != nil {
		t.Fatalf("NewDetector: %v", err)
	}
	sampler := stat.NewNormalSampler(77)
	angles := make([]float64, sys.Buses+1)
	for j := 2; j <= sys.Buses; j++ {
		angles[j] = 0.05 * float64(j-1)
	}
	falseAlarms := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		z, err := dcflow.MeasureAll(sys, nil, angles)
		if err != nil {
			t.Fatalf("MeasureAll: %v", err)
		}
		for id := 1; id <= sys.NumMeasurements(); id++ {
			z[id] += sampler.Sample(0, sigma)
		}
		sol, err := est.Estimate(z)
		if err != nil {
			t.Fatalf("Estimate: %v", err)
		}
		if det.BadDataDetected(sol) {
			falseAlarms++
		}
	}
	// At significance 1% the false alarm rate over 50 trials should be tiny.
	if falseAlarms > 5 {
		t.Fatalf("%d/%d false alarms at alpha=0.01", falseAlarms, trials)
	}
}

func TestGrossErrorDetected(t *testing.T) {
	sys := grid.IEEE14()
	meas := fullConfig(sys)
	const sigma = 0.005
	est, err := NewEstimator(meas, Config{RefBus: 1, Sigma: sigma})
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	det, err := NewDetector(est, 0.05)
	if err != nil {
		t.Fatalf("NewDetector: %v", err)
	}
	angles := make([]float64, sys.Buses+1)
	for j := 2; j <= sys.Buses; j++ {
		angles[j] = 0.03 * float64(j)
	}
	z, err := dcflow.MeasureAll(sys, nil, angles)
	if err != nil {
		t.Fatalf("MeasureAll: %v", err)
	}
	// A gross error on one line flow (not an a=Hc attack) must trip BDD.
	z[7] += 1.5
	sol, err := est.Estimate(z)
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if !det.BadDataDetected(sol) {
		t.Fatalf("gross error passed BDD: J=%v τ=%v", sol.J, det.Threshold())
	}
}

func TestStealthyInjectionPassesBDD(t *testing.T) {
	// The classical Liu et al. construction: a = Hc leaves the residual
	// unchanged. This is the vulnerability the whole paper is about.
	sys := grid.IEEE14()
	meas := fullConfig(sys)
	est, err := NewEstimator(meas, Config{RefBus: 1, Sigma: 0.005})
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	det, err := NewDetector(est, 0.05)
	if err != nil {
		t.Fatalf("NewDetector: %v", err)
	}
	angles := make([]float64, sys.Buses+1)
	for j := 2; j <= sys.Buses; j++ {
		angles[j] = 0.02 * float64(j)
	}
	z, err := dcflow.MeasureAll(sys, nil, angles)
	if err != nil {
		t.Fatalf("MeasureAll: %v", err)
	}
	solBefore, err := est.Estimate(z)
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	// Attack: shift bus 12's angle by 0.1 (c with a single nonzero entry),
	// a = H·c applied to all measurements.
	attacked := make([]float64, sys.Buses+1)
	copy(attacked, angles)
	attacked[12] += 0.1
	zAtt, err := dcflow.MeasureAll(sys, nil, attacked)
	if err != nil {
		t.Fatalf("MeasureAll: %v", err)
	}
	solAfter, err := est.Estimate(zAtt)
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if det.BadDataDetected(solAfter) {
		t.Fatalf("stealthy attack detected; residual machinery wrong")
	}
	if math.Abs(solAfter.J-solBefore.J) > 1e-9 {
		t.Fatalf("residual changed: %v → %v, want unchanged", solBefore.J, solAfter.J)
	}
	if math.Abs(solAfter.Angles[12]-solBefore.Angles[12]-0.1) > 1e-7 {
		t.Fatalf("estimated state not corrupted by attack")
	}
}

func TestUnobservableRejected(t *testing.T) {
	sys := grid.IEEE14()
	meas := fullConfig(sys)
	// Take only one measurement: clearly unobservable.
	ids := meas.TakenIDs()
	if err := meas.Untake(ids[1:]...); err != nil {
		t.Fatalf("Untake: %v", err)
	}
	_, err := NewEstimator(meas, Config{RefBus: 1, Sigma: 0.01})
	if !errors.Is(err, ErrUnobservable) {
		t.Fatalf("err = %v, want ErrUnobservable", err)
	}
}

func TestUnobservableByRankRejected(t *testing.T) {
	sys := grid.IEEE14()
	meas := fullConfig(sys)
	// Keep plenty of measurements but none touching bus 8 (only line 14
	// reaches it): untake its flow measurements and its injection, plus
	// the injection at bus 7.
	if err := meas.Untake(14, 34, sys.InjectionMeas(8), sys.InjectionMeas(7)); err != nil {
		t.Fatalf("Untake: %v", err)
	}
	_, err := NewEstimator(meas, Config{RefBus: 1, Sigma: 0.01})
	if !errors.Is(err, ErrUnobservable) {
		t.Fatalf("err = %v, want ErrUnobservable", err)
	}
}

func TestEstimatorConfigValidation(t *testing.T) {
	sys := grid.IEEE14()
	meas := fullConfig(sys)
	if _, err := NewEstimator(meas, Config{RefBus: 1, Sigma: 0}); err == nil {
		t.Fatalf("sigma 0 accepted")
	}
	if _, err := NewEstimator(meas, Config{RefBus: 99, Sigma: 0.01}); err == nil {
		t.Fatalf("bad ref bus accepted")
	}
}

func TestEstimateBadLength(t *testing.T) {
	sys := grid.IEEE14()
	est, err := NewEstimator(fullConfig(sys), Config{RefBus: 1, Sigma: 0.01})
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	if _, err := est.Estimate(make([]float64, 3)); err == nil {
		t.Fatalf("bad measurement vector length accepted")
	}
}

func TestDetectorProperties(t *testing.T) {
	sys := grid.IEEE14()
	est, err := NewEstimator(fullConfig(sys), Config{RefBus: 1, Sigma: 0.01})
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	det, err := NewDetector(est, 0.05)
	if err != nil {
		t.Fatalf("NewDetector: %v", err)
	}
	if det.DegreesOfFreedom() != 54-13 {
		t.Fatalf("dof = %d, want 41", det.DegreesOfFreedom())
	}
	if det.Threshold() <= 0 {
		t.Fatalf("threshold not positive")
	}
	if _, err := NewDetector(est, 2); err == nil {
		t.Fatalf("alpha ≥ 1 accepted")
	}
}

func TestEstimatorWithTopologyMapping(t *testing.T) {
	// When a line is out of service and the topology processor knows it,
	// estimation over the remaining grid must still work.
	sys := grid.IEEE14()
	mapped := dcflow.AllMapped(sys)
	mapped[13] = false
	meas := fullConfig(sys)
	// The excluded line's measurements read zero in reality.
	est, err := NewEstimator(meas, Config{RefBus: 1, Sigma: 0.01, Mapped: mapped})
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	angles := make([]float64, sys.Buses+1)
	for j := 2; j <= sys.Buses; j++ {
		angles[j] = 0.01 * float64(j)
	}
	z, err := dcflow.MeasureAll(sys, mapped, angles)
	if err != nil {
		t.Fatalf("MeasureAll: %v", err)
	}
	sol, err := est.Estimate(z)
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if sol.ResidualNorm > 1e-8 {
		t.Fatalf("residual %v with consistent topology, want ~0", sol.ResidualNorm)
	}
}
