package se

import (
	"testing"

	"segrid/internal/dcflow"
	"segrid/internal/grid"
	"segrid/internal/stat"
)

// lnrFixture builds a noisy 14-bus measurement set and its estimator.
func lnrFixture(t *testing.T, seed int64) (*Estimator, []float64) {
	t.Helper()
	sys := grid.IEEE14()
	meas := grid.NewMeasurementConfig(sys)
	const sigma = 0.005
	est, err := NewEstimator(meas, Config{RefBus: 1, Sigma: sigma})
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	angles := make([]float64, sys.Buses+1)
	for j := 2; j <= sys.Buses; j++ {
		angles[j] = 0.02 * float64(j%7)
	}
	z, err := dcflow.MeasureAll(sys, nil, angles)
	if err != nil {
		t.Fatalf("MeasureAll: %v", err)
	}
	sampler := stat.NewNormalSampler(seed)
	for id := 1; id <= sys.NumMeasurements(); id++ {
		z[id] += sampler.Sample(0, sigma)
	}
	return est, z
}

func TestLNRCleanDataRemovesNothing(t *testing.T) {
	est, z := lnrFixture(t, 3)
	report, err := est.IdentifyBadData(z, 3.5, 5)
	if err != nil {
		t.Fatalf("IdentifyBadData: %v", err)
	}
	if len(report.Removed) != 0 {
		t.Fatalf("clean data: removed %v", report.Removed)
	}
	if report.Final == nil {
		t.Fatalf("no final solution")
	}
}

func TestLNRIdentifiesSingleGrossError(t *testing.T) {
	est, z := lnrFixture(t, 4)
	z[9] += 0.8 // gross error on line 9's forward flow
	report, err := est.IdentifyBadData(z, 3.5, 5)
	if err != nil {
		t.Fatalf("IdentifyBadData: %v", err)
	}
	if len(report.Removed) == 0 {
		t.Fatalf("gross error not identified")
	}
	if report.Removed[0] != 9 {
		t.Fatalf("first removal = %d, want 9", report.Removed[0])
	}
	// After removal the estimate is clean again.
	det, err := NewDetector(est, 0.01)
	if err != nil {
		t.Fatalf("NewDetector: %v", err)
	}
	_ = det // threshold not directly comparable after removal; final J must be modest
	if report.Final.J > 200 {
		t.Fatalf("final residual %v still large", report.Final.J)
	}
}

func TestLNRIdentifiesTwoErrors(t *testing.T) {
	est, z := lnrFixture(t, 5)
	z[9] += 0.8
	z[46] -= 0.7
	report, err := est.IdentifyBadData(z, 3.5, 5)
	if err != nil {
		t.Fatalf("IdentifyBadData: %v", err)
	}
	got := map[int]bool{}
	for _, id := range report.Removed {
		got[id] = true
	}
	if !got[9] || !got[46] {
		t.Fatalf("removed %v, want both 9 and 46", report.Removed)
	}
}

func TestLNRMaxRemoveBound(t *testing.T) {
	est, z := lnrFixture(t, 6)
	z[9] += 0.8
	z[46] -= 0.7
	report, err := est.IdentifyBadData(z, 3.5, 1)
	if err != nil {
		t.Fatalf("IdentifyBadData: %v", err)
	}
	if len(report.Removed) > 1 {
		t.Fatalf("bound ignored: removed %v", report.Removed)
	}
}

// TestStealthyAttackEvadesLNR is the point of the whole exercise: the
// iterative LNR identification — which reliably nails gross errors —
// removes nothing when fed a coordinated a = H·c injection, because the
// residuals are exactly those of the clean measurements.
func TestStealthyAttackEvadesLNR(t *testing.T) {
	est, z := lnrFixture(t, 7)
	sys := grid.IEEE14()
	c := make([]float64, sys.Buses+1)
	c[9] = 0.3
	c[10] = 0.3
	c[14] = 0.3
	attack, err := dcflow.MeasureAll(sys, nil, c)
	if err != nil {
		t.Fatalf("MeasureAll: %v", err)
	}
	for id := 1; id <= sys.NumMeasurements(); id++ {
		z[id] += attack[id]
	}
	report, err := est.IdentifyBadData(z, 3.5, 5)
	if err != nil {
		t.Fatalf("IdentifyBadData: %v", err)
	}
	if len(report.Removed) != 0 {
		t.Fatalf("LNR removed %v under a stealthy attack", report.Removed)
	}
	// And the final estimate is corrupted.
	if report.Final.Angles[9] < 0.2 {
		t.Fatalf("attack did not corrupt the estimate")
	}
}

func TestLNRValidation(t *testing.T) {
	est, z := lnrFixture(t, 8)
	if _, err := est.IdentifyBadData(z, 0, 5); err == nil {
		t.Fatalf("zero threshold accepted")
	}
	if _, err := est.IdentifyBadData(z, 3, -1); err == nil {
		t.Fatalf("negative maxRemove accepted")
	}
}

func TestObservableIslandsFullSet(t *testing.T) {
	meas := grid.NewMeasurementConfig(grid.IEEE14())
	islands, err := ObservableIslands(meas)
	if err != nil {
		t.Fatalf("ObservableIslands: %v", err)
	}
	if len(islands) != 1 || len(islands[0]) != 14 {
		t.Fatalf("islands = %v, want one island of 14 buses", islands)
	}
	ok, err := Observable(meas)
	if err != nil || !ok {
		t.Fatalf("Observable = %v, %v", ok, err)
	}
}

func TestObservableIslandsIsolatedBus(t *testing.T) {
	sys := grid.IEEE14()
	meas := grid.NewMeasurementConfig(sys)
	// Cut bus 8 loose: line 14 (7→8) flows and the injections at 7 and 8.
	if err := meas.Untake(14, 34, sys.InjectionMeas(7), sys.InjectionMeas(8)); err != nil {
		t.Fatalf("Untake: %v", err)
	}
	islands, err := ObservableIslands(meas)
	if err != nil {
		t.Fatalf("ObservableIslands: %v", err)
	}
	if len(islands) != 2 {
		t.Fatalf("islands = %v, want 2", islands)
	}
	// Bus 8 alone in its island.
	var small []int
	for _, isl := range islands {
		if len(isl) < len(small) || small == nil {
			small = isl
		}
	}
	if len(small) != 1 || small[0] != 8 {
		t.Fatalf("isolated island = %v, want [8]", small)
	}
}

func TestObservableIslandsForwardFlowsOnly(t *testing.T) {
	// Forward flows alone span a connected grid: one island.
	sys := grid.IEEE30()
	meas := grid.NewMeasurementConfig(sys)
	var drop []int
	for id := sys.NumLines() + 1; id <= sys.NumMeasurements(); id++ {
		drop = append(drop, id)
	}
	if err := meas.Untake(drop...); err != nil {
		t.Fatalf("Untake: %v", err)
	}
	ok, err := Observable(meas)
	if err != nil {
		t.Fatalf("Observable: %v", err)
	}
	if !ok {
		t.Fatalf("forward flows should observe the whole grid")
	}
}

func TestObservableIslandsInjectionCoupling(t *testing.T) {
	// A 3-bus chain 1—2—3 with only bus 2's injection taken: the injection
	// couples all three angles into one relation but cannot fix two
	// degrees of freedom — expect more than one island yet fewer than
	// three free buses... concretely: null space has dimension 2 over 3
	// buses, and no pair is locked together.
	sys, err := grid.NewSystem("chain3", 3, []grid.Line{
		{ID: 1, From: 1, To: 2, Admittance: 1},
		{ID: 2, From: 2, To: 3, Admittance: 1},
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	meas := grid.NewMeasurementConfig(sys)
	if err := meas.Untake(1, 2, 3, 4, sys.InjectionMeas(1), sys.InjectionMeas(3)); err != nil {
		t.Fatalf("Untake: %v", err)
	}
	islands, err := ObservableIslands(meas)
	if err != nil {
		t.Fatalf("ObservableIslands: %v", err)
	}
	if len(islands) != 3 {
		t.Fatalf("islands = %v, want 3 singletons (one injection cannot lock any pair)", islands)
	}
}
