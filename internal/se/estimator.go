// Package se implements weighted-least-squares state estimation with
// chi-square bad data detection for the DC measurement model (paper
// Section II-B), plus numerical observability analysis. It is the component
// the UFDI attack model targets; the integration tests use it to confirm
// that synthesized attack vectors are genuinely stealthy.
package se

import (
	"errors"
	"fmt"

	"segrid/internal/dcflow"
	"segrid/internal/grid"
	"segrid/internal/matrix"
	"segrid/internal/stat"
)

// ErrUnobservable is returned when the taken measurement set cannot
// determine the system state.
var ErrUnobservable = errors.New("se: system unobservable with taken measurements")

// Estimator solves ẑ = argmin (z−Hx)ᵀW(z−Hx) for the DC model.
type Estimator struct {
	sys     *grid.System
	meas    *grid.MeasurementConfig
	refBus  int
	h       *matrix.Dense // reduced: taken rows × (b−1) columns
	ids     []int         // measurement IDs in row order
	weights []float64     // per taken row
	gain    *matrix.Dense // HᵀWH
	sigma   float64
}

// Config configures an estimator.
type Config struct {
	// RefBus is the angle reference bus (1-based).
	RefBus int
	// Sigma is the measurement noise standard deviation; weights are
	// 1/σ² uniformly. Must be positive.
	Sigma float64
	// Mapped is the topology mapping used by the topology processor
	// (1-based; nil means every line in service).
	Mapped []bool
}

// NewEstimator builds an estimator for the taken measurements of meas.
func NewEstimator(meas *grid.MeasurementConfig, cfg Config) (*Estimator, error) {
	sys := meas.System()
	if cfg.Sigma <= 0 {
		return nil, fmt.Errorf("se: sigma must be positive, got %v", cfg.Sigma)
	}
	full := dcflow.BuildH(sys, cfg.Mapped)
	h, ids, err := dcflow.ReduceH(full, sys, meas, cfg.RefBus)
	if err != nil {
		return nil, err
	}
	if len(ids) < sys.Buses-1 {
		return nil, ErrUnobservable
	}
	if h.Rank(1e-8) < sys.Buses-1 {
		return nil, ErrUnobservable
	}
	w := make([]float64, len(ids))
	for i := range w {
		w[i] = 1 / (cfg.Sigma * cfg.Sigma)
	}
	// Gain matrix HᵀWH.
	hw := h.Clone()
	if _, err := hw.ScaleRows(w); err != nil {
		return nil, err
	}
	gain, err := h.Transpose().Mul(hw)
	if err != nil {
		return nil, err
	}
	return &Estimator{
		sys:     sys,
		meas:    meas,
		refBus:  cfg.RefBus,
		h:       h,
		ids:     ids,
		weights: w,
		gain:    gain,
		sigma:   cfg.Sigma,
	}, nil
}

// MeasurementIDs returns the taken measurement IDs in estimator row order.
func (e *Estimator) MeasurementIDs() []int {
	return append([]int(nil), e.ids...)
}

// NumMeasurements returns m, the number of taken measurements.
func (e *Estimator) NumMeasurements() int { return len(e.ids) }

// NumStates returns n = b − 1 estimated states.
func (e *Estimator) NumStates() int { return e.sys.Buses - 1 }

// Solution is the result of one estimation run.
type Solution struct {
	// Angles are the estimated phase angles, 1-based per bus; the
	// reference bus is 0.
	Angles []float64
	// Estimated are the estimated measurement values in row order.
	Estimated []float64
	// ResidualNorm is ‖z − Hx̂‖₂.
	ResidualNorm float64
	// J is the weighted residual sum of squares Σ wᵢ(zᵢ−ẑᵢ)², the bad
	// data detection statistic (χ² with m−n degrees of freedom).
	J float64
}

// Estimate runs WLS on a full 1-based potential-measurement vector z
// (only taken entries are read).
func (e *Estimator) Estimate(z []float64) (*Solution, error) {
	if len(z) != e.sys.NumMeasurements()+1 {
		return nil, fmt.Errorf("se: measurement vector length %d, want %d", len(z), e.sys.NumMeasurements()+1)
	}
	zt := make([]float64, len(e.ids))
	for i, id := range e.ids {
		zt[i] = z[id]
	}
	// Normal equations: (HᵀWH) x = HᵀW z.
	rhs := make([]float64, e.h.Cols())
	for i := range e.ids {
		wi := e.weights[i] * zt[i]
		for j := 0; j < e.h.Cols(); j++ {
			rhs[j] += e.h.At(i, j) * wi
		}
	}
	x, err := e.gain.SolveLU(rhs)
	if err != nil {
		return nil, fmt.Errorf("se: gain matrix solve: %w", err)
	}
	est, err := e.h.MulVec(x)
	if err != nil {
		return nil, err
	}
	diff, err := matrix.SubVec(zt, est)
	if err != nil {
		return nil, err
	}
	j := 0.0
	for i, d := range diff {
		j += e.weights[i] * d * d
	}
	angles := make([]float64, e.sys.Buses+1)
	col := 0
	for bus := 1; bus <= e.sys.Buses; bus++ {
		if bus == e.refBus {
			continue
		}
		angles[bus] = x[col]
		col++
	}
	return &Solution{
		Angles:       angles,
		Estimated:    est,
		ResidualNorm: matrix.Norm2(diff),
		J:            j,
	}, nil
}

// Detector is the chi-square bad data detector: it flags a measurement set
// when the weighted residual exceeds the χ²_{m−n} quantile at the given
// significance.
type Detector struct {
	threshold float64
	dof       int
}

// NewDetector builds a detector for an estimator at significance alpha
// (e.g. 0.05 ⇒ 95th-percentile threshold, the paper's τ).
func NewDetector(e *Estimator, alpha float64) (*Detector, error) {
	dof := e.NumMeasurements() - e.NumStates()
	if dof <= 0 {
		return nil, fmt.Errorf("se: no redundancy (m=%d, n=%d)", e.NumMeasurements(), e.NumStates())
	}
	q, err := stat.ChiSquareQuantile(1-alpha, dof)
	if err != nil {
		return nil, err
	}
	return &Detector{threshold: q, dof: dof}, nil
}

// Threshold returns τ.
func (d *Detector) Threshold() float64 { return d.threshold }

// DegreesOfFreedom returns m − n.
func (d *Detector) DegreesOfFreedom() int { return d.dof }

// BadDataDetected reports whether the solution's residual statistic exceeds
// the detection threshold.
func (d *Detector) BadDataDetected(sol *Solution) bool {
	return sol.J > d.threshold
}
