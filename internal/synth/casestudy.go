package synth

import (
	"fmt"

	"segrid/internal/core"
)

// CaseStudyRequirements builds the paper's Section IV-E synthesis scenarios
// on the IEEE 14-bus case study. scenario ∈ {1, 2, 3}:
//
//  1. attacker without the admittances of lines 3 and 17, limited to 12
//     simultaneous measurements;
//  2. complete knowledge, unlimited resources;
//  3. scenario 2 plus topology poisoning of the non-core lines 5 and 13 —
//     the architecture must resist the attacker in every admissible true
//     topology of those lines.
//
// Bus 1 is the reference and, as in all of the paper's printed
// architectures, required in the secured set.
func CaseStudyRequirements(scenario, maxBuses int) (*Requirements, error) {
	attack := func(line5Closed, line13Closed bool) *core.Scenario {
		sc := core.NewScenario(core.CaseStudyMeasurements(false).System())
		sc.Meas = core.CaseStudyMeasurements(false)
		sc.AnyState = true
		inService, fixed, secured := core.CaseStudyTopology()
		inService[5] = line5Closed
		inService[13] = line13Closed
		sc.InService = inService
		sc.FixedLines = fixed
		sc.SecuredStatus = secured
		return sc
	}
	req := &Requirements{
		MaxSecuredBuses: maxBuses,
		RequiredBuses:   []int{1},
		Prune:           true,
	}
	switch scenario {
	case 1:
		sc := attack(true, true)
		kn := make([]bool, 21)
		for i := 1; i <= 20; i++ {
			kn[i] = i != 3 && i != 17
		}
		sc.Knowledge = kn
		sc.MaxAlteredMeasurements = 12
		req.Attack = sc
	case 2:
		req.Attack = attack(true, true)
	case 3:
		for _, variant := range [][2]bool{{true, true}, {true, false}, {false, true}, {false, false}} {
			sc := attack(variant[0], variant[1])
			sc.AllowExclusion = true
			sc.AllowInclusion = true
			if req.Attack == nil {
				req.Attack = sc
			} else {
				req.ExtraAttacks = append(req.ExtraAttacks, sc)
			}
		}
	default:
		return nil, fmt.Errorf("synth: unknown case-study scenario %d", scenario)
	}
	return req, nil
}
