package synth

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"segrid/internal/proof"
)

// TestCubeMatchesSequentialScenarios: cube-and-conquer must synthesize a
// protecting architecture wherever the sequential loop does — the cubes
// partition the candidate space, so no solution can fall between them.
func TestCubeMatchesSequentialScenarios(t *testing.T) {
	for _, tc := range []struct {
		scenario, maxBuses, workers int
	}{
		{1, 4, 4},
		{2, 5, 4},
		{2, 5, 2},
		{3, 6, 3},
	} {
		req, err := CaseStudyRequirements(tc.scenario, tc.maxBuses)
		if err != nil {
			t.Fatalf("CaseStudyRequirements: %v", err)
		}
		req.CubeWorkers = tc.workers
		arch := synthesize(t, req)
		if len(arch.SecuredBuses) > tc.maxBuses {
			t.Fatalf("scenario %d: architecture %v exceeds %d buses", tc.scenario, arch.SecuredBuses, tc.maxBuses)
		}
		if !protectsIn(t, arch.SecuredBuses, req.Attack) {
			t.Fatalf("scenario %d: cube architecture %v does not protect", tc.scenario, arch.SecuredBuses)
		}
		for i, sc := range req.ExtraAttacks {
			if !protectsIn(t, arch.SecuredBuses, sc) {
				t.Fatalf("scenario %d: cube architecture fails topology variant %d", tc.scenario, i+1)
			}
		}
		if arch.Workers < 1 || arch.Workers > tc.workers {
			t.Fatalf("scenario %d: Workers = %d, want within [1, %d]", tc.scenario, arch.Workers, tc.workers)
		}
		if arch.VerifyStats.Workers != arch.Workers || arch.SelectStats.Workers != arch.Workers {
			t.Fatalf("scenario %d: stats workers %d/%d, want %d",
				tc.scenario, arch.SelectStats.Workers, arch.VerifyStats.Workers, arch.Workers)
		}
		if arch.Iterations < 1 {
			t.Fatalf("scenario %d: Iterations = %d", tc.scenario, arch.Iterations)
		}
	}
}

// TestCubeNoArchitectureComplete: the impossibility verdict must survive the
// partitioning — every cube exhausting means the whole space is empty, and
// the run must say so rather than give up.
func TestCubeNoArchitectureComplete(t *testing.T) {
	req, err := CaseStudyRequirements(2, 4)
	if err != nil {
		t.Fatalf("CaseStudyRequirements: %v", err)
	}
	req.CubeWorkers = 4
	if _, err := Synthesize(req); !errors.Is(err, ErrNoArchitecture) {
		t.Fatalf("cube synthesis = %v, want ErrNoArchitecture (paper Scenario 2, 4 buses)", err)
	}
}

// TestCubeProofPublishedAndTrimmed: with certificate logging on, only the
// winning worker's streams may publish — trimmed, renamed to the canonical
// attack-<tag>-<i>.proof names, and acceptable to the independent checker.
// Losing workers' staged streams must vanish entirely.
func TestCubeProofPublishedAndTrimmed(t *testing.T) {
	dir := t.TempDir()
	req, err := CaseStudyRequirements(1, 4)
	if err != nil {
		t.Fatalf("CaseStudyRequirements: %v", err)
	}
	req.CubeWorkers = 3
	req.ProofDir = dir
	req.ProofTag = "cube"
	arch := synthesize(t, req)
	if !protectsIn(t, arch.SecuredBuses, req.Attack) {
		t.Fatalf("architecture does not protect")
	}
	want := []string{filepath.Join(dir, "attack-cube-0.proof")}
	if len(arch.ProofFiles) != len(want) || arch.ProofFiles[0] != want[0] {
		t.Fatalf("ProofFiles = %v, want %v", arch.ProofFiles, want)
	}
	for _, path := range arch.ProofFiles {
		rep, err := proof.CheckFile(path)
		if err != nil {
			t.Fatalf("winner certificate rejected: %v", err)
		}
		if rep.UnsatChecks < 1 {
			t.Fatalf("winner certificate has no unsat checks")
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), "-w") || strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("stray worker/staging file %q survived the run", e.Name())
		}
	}
}

// TestCubeIterationBound: the iteration cap is global across workers and
// ends the run with a BudgetExhaustedError, not a hang or a false verdict.
func TestCubeIterationBound(t *testing.T) {
	req, err := CaseStudyRequirements(2, 4)
	if err != nil {
		t.Fatalf("CaseStudyRequirements: %v", err)
	}
	req.CubeWorkers = 2
	req.MaxIterations = 1
	_, err = Synthesize(req)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("got %v, want ErrBudgetExhausted", err)
	}
}

// TestCubeAutoWorkers: CubeWorkers < 0 resolves to the GOMAXPROCS-aware
// default.
func TestCubeAutoWorkers(t *testing.T) {
	req, err := CaseStudyRequirements(1, 4)
	if err != nil {
		t.Fatalf("CaseStudyRequirements: %v", err)
	}
	req.CubeWorkers = -1
	arch := synthesize(t, req)
	if arch.Workers < 1 {
		t.Fatalf("Workers = %d, want ≥ 1", arch.Workers)
	}
	if !protectsIn(t, arch.SecuredBuses, req.Attack) {
		t.Fatalf("architecture does not protect")
	}
}

// TestCubePlanPartition: the planned cubes are an exact partition — every
// pivot assignment appears exactly once — and pivots avoid operator-fixed
// and (under Eq. 30 pruning) mutually adjacent buses.
func TestCubePlanPartition(t *testing.T) {
	req, err := CaseStudyRequirements(2, 5)
	if err != nil {
		t.Fatalf("CaseStudyRequirements: %v", err)
	}
	cubes := planCubes(req, 4)
	if len(cubes) == 0 {
		t.Fatalf("no cubes planned")
	}
	seen := make(map[string]bool)
	for _, cube := range cubes {
		key := ""
		for _, cl := range cube {
			if cl.bus == 1 {
				t.Fatalf("required bus 1 used as pivot")
			}
			if cl.secured {
				key += "1"
			} else {
				key += "0"
			}
		}
		if seen[key] {
			t.Fatalf("duplicate cube %q", key)
		}
		seen[key] = true
	}
	if len(seen) != len(cubes) || len(cubes)&(len(cubes)-1) != 0 {
		t.Fatalf("cubes do not form a power-of-two partition: %d", len(cubes))
	}
}
