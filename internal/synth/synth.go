// Package synth implements the paper's countermeasure synthesis mechanism
// (Section IV): an iterative combination of a candidate security
// architecture selection model (Eqs. 27–30) and the UFDI attack
// verification model (internal/core). A candidate — a set of buses whose
// measurements get data-integrity protection — is a solution when the
// attack model becomes unsatisfiable under it (Algorithm 1).
package synth

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"segrid/internal/core"
	"segrid/internal/proof"
	"segrid/internal/screen"
	"segrid/internal/smt"
)

// ErrNoArchitecture is returned when no bus set within the operator's
// budget resists the specified attacker.
var ErrNoArchitecture = errors.New("synth: no security architecture satisfies the requirements")

// Requirements bundles the security requirements (the expected attack
// model) with the grid operator's constraints.
type Requirements struct {
	// Attack is the attacker profile to defend against. Its goal is
	// typically AnyState (protect every state); any core.Scenario works.
	Attack *core.Scenario

	// ExtraAttacks lists additional attacker profiles the architecture
	// must resist as well — e.g. the same attacker over every admissible
	// true topology of non-core lines (the paper's Scenario 3, where an
	// architecture must hold whether lines 5 and 13 are in service or
	// not). All profiles must share the primary scenario's measurement
	// configuration.
	ExtraAttacks []*core.Scenario

	// MaxSecuredBuses is T_SB (Eq. 27), the operator's budget.
	MaxSecuredBuses int

	// ExcludedBuses lists buses the operator cannot secure (Eq. 29).
	ExcludedBuses []int

	// RequiredBuses lists buses every candidate must secure. The paper's
	// case-study architectures all include the reference bus, so its
	// scenarios set RequiredBuses = {RefBus}.
	RequiredBuses []int

	// Prune enables the Eq. 30 search-space reduction: a secured bus
	// implies its measurement-connected neighbors are not selected.
	Prune bool

	// MaxIterations bounds Algorithm 1's loop; ≤ 0 means unlimited.
	// Exhausting it returns a *BudgetExhaustedError (matched by
	// errors.Is(err, ErrBudgetExhausted)), distinct from ErrNoArchitecture:
	// the candidate space was not proven empty, the search merely gave up.
	MaxIterations int

	// Limits bounds the run's wall clock and per-candidate solver budgets;
	// the zero value means unbounded.
	Limits Limits

	// Options configures the candidate selection solver; nil means
	// smt.DefaultOptions.
	Options *smt.Options

	// ProofDir, when non-empty, turns on UNSAT certificate logging for the
	// attack-verification solvers: attack model i (the primary attack is 0,
	// ExtraAttacks follow in order) streams its certificates to
	// <ProofDir>/attack-<tag>-<i>.proof, one file covering every candidate
	// check against that model. The tag is ProofTag, or a generated
	// process-unique run component when ProofTag is empty, so concurrent
	// synthesis runs can share one directory without their certificate
	// streams colliding. Files are staged in hidden temporaries and renamed
	// into place when the run's writers close, so a killed run never leaves
	// a half-written certificate at a published name. The files are listed
	// on the returned Architecture and can be validated independently with
	// cmd/proofcheck. The directory must already exist.
	ProofDir string

	// ProofTag overrides the generated per-run component of certificate
	// file names (see ProofDir). Callers that need predictable names — a
	// service tagging streams by request or session id — set it; it must be
	// unique among runs sharing the directory.
	ProofTag string

	// NoScreen disables the LP-relaxation screening pre-filter. By default
	// every (candidate, attack model) check first consults internal/screen:
	// a definitive relaxation verdict resolves the check without touching
	// the SMT solver — Infeasible skips the model, FeasibleIntegral defeats
	// the candidate and feeds the witness's support into hitting-set
	// blocking. Verdicts are unchanged either way (the screen is certifying
	// and inconclusive screens fall through); this is the ablation switch.
	// Proof-logging runs (ProofDir set) skip the screen automatically, so
	// certificate streams keep one certificate per refuting check.
	NoScreen bool

	// CubeWorkers switches Algorithm 1 to cube-and-conquer: the candidate
	// space is partitioned by sign constraints on pivot buses and the cubes
	// are fanned across that many workers, each running the selection/verify
	// loop on its own incremental solver instances with counterexample
	// supports shared through a common pool. 0 keeps the sequential loop;
	// < 0 selects smt.DefaultWorkers(). The verdict is unchanged — cubes
	// partition the space exactly, and shared blocking clauses are valid in
	// every cube — but which verified architecture is returned is
	// first-past-the-post among the workers.
	CubeWorkers int

	// SupportPool, if non-nil, seeds the cube fleet's shared
	// counterexample-support pool and accumulates new supports into it —
	// the cross-request persistence hook: a caller that keys pools by
	// attack model can make later synthesis runs start from every support
	// earlier runs paid to discover. Supports depend only on the attack
	// scenarios (Attack plus ExtraAttacks), never on budget or exclusions,
	// so reuse across runs with the same scenarios is sound. nil gives the
	// run a private pool. Ignored by the sequential loop (CubeWorkers 0).
	SupportPool *SupportPool
}

// Architecture is a synthesized security architecture.
type Architecture struct {
	// SecuredBuses is the bus set to protect, ascending.
	SecuredBuses []int

	// Iterations is the number of Algorithm 1 loop iterations (candidates
	// tried, including the successful one).
	Iterations int

	// SelectTime and VerifyTime split the synthesis wall time between the
	// two models; the paper's Fig. 5 measures their sum.
	SelectTime time.Duration
	VerifyTime time.Duration

	// SelectStats and VerifyStats are the solver statistics of the last
	// candidate selection and verification checks (model sizes for the
	// paper's Table IV).
	SelectStats smt.Stats
	VerifyStats smt.Stats

	// ProofFiles lists the UNSAT certificate files written during
	// verification when Requirements.ProofDir was set, in attack-model
	// order. Empty otherwise. In cube mode these are the winning worker's
	// trimmed streams; losing workers' staged streams are discarded.
	ProofFiles []string

	// Workers is the effective cube-and-conquer worker count (0 for a
	// sequential run).
	Workers int
}

// Duration is the total synthesis time.
func (a *Architecture) Duration() time.Duration { return a.SelectTime + a.VerifyTime }

// selectionModel is F_Secure of Algorithm 1. Its solver lives for the whole
// synthesis run: blocking clauses accumulate as incremental assertions on
// one persistent instance, so each nextCandidate call pays only for the new
// clauses plus the (learnt-clause-assisted) re-search.
type selectionModel struct {
	solver  *smt.Solver
	sb      []smt.BoolVar // 1-based per bus
	buses   int
	blocked [][]smt.Formula // blocking clauses, for re-assertion across scopes
}

// newSelectionModel encodes Eqs. 27–30.
func newSelectionModel(req *Requirements) (*selectionModel, error) {
	sc := req.Attack
	sys := sc.System()
	opts := smt.DefaultOptions()
	if req.Options != nil {
		opts = *req.Options
	}
	m := &selectionModel{
		solver: smt.NewSolver(opts),
		sb:     make([]smt.BoolVar, sys.Buses+1),
		buses:  sys.Buses,
	}
	for j := 1; j <= sys.Buses; j++ {
		m.sb[j] = m.solver.BoolVar(fmt.Sprintf("sb_%d", j))
	}
	// Eq. 27: operator budget.
	fs := make([]smt.Formula, 0, sys.Buses)
	for j := 1; j <= sys.Buses; j++ {
		fs = append(fs, smt.B(m.sb[j]))
	}
	m.solver.AssertAtMostK(fs, req.MaxSecuredBuses)
	// Eq. 29: operator exclusions.
	for _, j := range req.ExcludedBuses {
		if j < 1 || j > sys.Buses {
			return nil, fmt.Errorf("synth: excluded bus %d out of range 1..%d", j, sys.Buses)
		}
		m.solver.Assert(smt.Not(smt.B(m.sb[j])))
	}
	for _, j := range req.RequiredBuses {
		if j < 1 || j > sys.Buses {
			return nil, fmt.Errorf("synth: required bus %d out of range 1..%d", j, sys.Buses)
		}
		m.solver.Assert(smt.B(m.sb[j]))
	}
	// Eq. 30: securing a bus makes securing a measurement-connected
	// neighbor unnecessary; prune candidates that secure both ends of a
	// line with a taken flow measurement. (As in the paper, this is a
	// search-space reduction: architectures outside it may still protect
	// the grid but are never proposed.)
	if req.Prune {
		for _, ln := range sys.Lines {
			connected := sc.Meas.Taken[sys.ForwardFlowMeas(ln.ID)] ||
				sc.Meas.Taken[sys.BackwardFlowMeas(ln.ID)]
			if !connected {
				continue
			}
			m.solver.Assert(smt.Or(smt.Not(smt.B(m.sb[ln.From])), smt.Not(smt.B(m.sb[ln.To]))))
		}
	}
	return m, nil
}

// nextCandidate solves F_Secure. The returned status distinguishes an
// exhausted candidate space (Unsat) from a solver that gave up (Unknown,
// with why carrying the cause).
func (m *selectionModel) nextCandidate(ctx context.Context) (buses []int, stats smt.Stats, status smt.Status, why error, err error) {
	// Enumeration diversity: without this, the persistent solver's saved
	// phases walk each re-solve to a near neighbor of the just-blocked
	// candidate, inflating Algorithm 1's iteration count.
	m.solver.ResetPhases()
	res, err := m.solver.CheckContext(ctx)
	if err != nil {
		return nil, smt.Stats{}, smt.Unknown, nil, fmt.Errorf("synth: candidate selection: %w", err)
	}
	if res.Status != smt.Sat {
		return nil, res.Stats, res.Status, res.Why, nil
	}
	for j := 1; j <= m.buses; j++ {
		if res.Bool(m.sb[j]) {
			buses = append(buses, j)
		}
	}
	sort.Ints(buses)
	return buses, res.Stats, smt.Sat, nil, nil
}

// blockBySubset removes the failed candidate and all of its subsets:
// securing fewer buses can never help, so the next candidate must include
// at least one bus outside the failed set. (This is a sound strengthening
// of Algorithm 1's per-candidate blocking constraint; the
// counterexample-guided blockByAttack below is stronger still and is used
// whenever a witness attack is available.)
func (m *selectionModel) blockBySubset(failed []int) {
	in := make(map[int]bool, len(failed))
	for _, j := range failed {
		in[j] = true
	}
	fs := make([]smt.Formula, 0, m.buses-len(failed))
	for j := 1; j <= m.buses; j++ {
		if !in[j] {
			fs = append(fs, smt.B(m.sb[j]))
		}
	}
	m.block(fs)
}

// blockByAttack learns from a counterexample: the witness attack altered
// measurements homed at exactly the given buses, so any candidate securing
// none of them admits the identical attack. Every future candidate must hit
// the witness's support. This hitting-set refinement collapses Algorithm
// 1's iteration count on larger systems without losing completeness.
func (m *selectionModel) blockByAttack(supportBuses []int) {
	fs := make([]smt.Formula, 0, len(supportBuses))
	for _, j := range supportBuses {
		fs = append(fs, smt.B(m.sb[j]))
	}
	m.block(fs)
}

// block asserts a blocking clause and records it for re-assertion across
// budget-relaxation scopes.
func (m *selectionModel) block(fs []smt.Formula) {
	m.blocked = append(m.blocked, fs)
	m.solver.Assert(smt.Or(fs...))
}

// requireFullBudget constrains candidates to use the entire budget; with
// subset blocking this accelerates convergence. It is retracted (via a
// fresh phase) when the full-budget space is exhausted, since Eq. 30
// pruning can make full-size candidates infeasible while smaller ones work.
func (m *selectionModel) requireFullBudget(k int) {
	fs := make([]smt.Formula, 0, m.buses)
	for j := 1; j <= m.buses; j++ {
		fs = append(fs, smt.B(m.sb[j]))
	}
	m.solver.Push()
	m.solver.AssertAtLeastK(fs, k)
}

// relaxBudget pops the full-budget constraint. Blocking clauses asserted
// inside the popped scope are re-asserted at the base scope: a failed
// candidate stays failed regardless of the budget constraint.
func (m *selectionModel) relaxBudget() error {
	if err := m.solver.Pop(); err != nil {
		return err
	}
	for _, fs := range m.blocked {
		m.solver.Assert(smt.Or(fs...))
	}
	return nil
}

// withProofWriters rewires attack scenarios so each verification solver logs
// UNSAT certificates to <dir>/attack-<tag>-<i>.proof (tag generated when
// empty — see Requirements.ProofTag). Streams are atomic: they publish at
// those names only when closed cleanly. Scenarios are shallow-copied with
// cloned solver options, so callers' scenarios stay untouched. The caller
// owns the returned writers (closeProofWriters).
func withProofWriters(dir, tag string, scs []*core.Scenario) ([]*core.Scenario, []*proof.Writer, []string, error) {
	if tag == "" {
		tag = proof.UniqueName("", "")
	}
	out := make([]*core.Scenario, len(scs))
	writers := make([]*proof.Writer, 0, len(scs))
	paths := make([]string, 0, len(scs))
	for i, sc := range scs {
		path := filepath.Join(dir, fmt.Sprintf("attack-%s-%d.proof", tag, i))
		w, err := proof.CreateAtomic(path)
		if err != nil {
			for _, prev := range writers {
				prev.Close()
			}
			return nil, nil, nil, fmt.Errorf("synth: proof log: %w", err)
		}
		opts := smt.DefaultOptions()
		if sc.Options != nil {
			opts = *sc.Options
		}
		opts.Proof = w
		scc := *sc
		scc.Options = &opts
		out[i] = &scc
		writers = append(writers, w)
		paths = append(paths, path)
	}
	return out, writers, paths, nil
}

// closeProofWriters flushes and closes certificate writers. A write error
// invalidates the certificates, so it surfaces through errp — but never
// masks an error the run itself already produced.
func closeProofWriters(writers []*proof.Writer, errp *error) {
	for _, w := range writers {
		if cerr := w.Close(); cerr != nil && *errp == nil {
			*errp = fmt.Errorf("synth: proof log: %w", cerr)
		}
	}
}

// Synthesize runs Algorithm 1: iterate candidate selection and attack
// verification until a candidate makes the attack model unsat. It returns
// ErrNoArchitecture when the candidate space is exhausted. It is
// SynthesizeContext with a background context.
func Synthesize(req *Requirements) (*Architecture, error) {
	return SynthesizeContext(context.Background(), req)
}

// SynthesizeContext runs Algorithm 1 under ctx and the requirements'
// Limits. Three outcomes are distinguished: a verified Architecture (nil
// error), a proof that no architecture exists (ErrNoArchitecture), and a
// graceful give-up (*BudgetExhaustedError, carrying the best unverified
// candidate plus iteration stats) when a deadline, the iteration cap, or
// the escalating per-candidate budget runs out.
func SynthesizeContext(ctx context.Context, req *Requirements) (res *Architecture, err error) {
	if req.Attack == nil {
		return nil, fmt.Errorf("synth: requirements carry no attack scenario")
	}
	if req.MaxSecuredBuses < 1 {
		return nil, fmt.Errorf("synth: MaxSecuredBuses must be positive, got %d", req.MaxSecuredBuses)
	}
	if req.CubeWorkers != 0 {
		workers := req.CubeWorkers
		if workers < 0 {
			workers = smt.DefaultWorkers()
		}
		return synthesizeCubes(ctx, req, workers)
	}
	ctx, cancelRun := req.Limits.runContext(ctx)
	defer cancelRun()
	pol := req.Limits.policy()

	scenarios := append([]*core.Scenario{req.Attack}, req.ExtraAttacks...)
	var proofFiles []string
	if req.ProofDir != "" {
		var writers []*proof.Writer
		scenarios, writers, proofFiles, err = withProofWriters(req.ProofDir, req.ProofTag, scenarios)
		if err != nil {
			return nil, err
		}
		defer closeProofWriters(writers, &err)
	}
	attacks := make([]*core.Model, 0, len(scenarios))
	for _, sc := range scenarios {
		m, err := core.NewModel(sc)
		if err != nil {
			return nil, fmt.Errorf("synth: attack model: %w", err)
		}
		attacks = append(attacks, m)
	}
	selection, err := newSelectionModel(req)
	if err != nil {
		return nil, err
	}

	arch := &Architecture{ProofFiles: proofFiles}
	var best []int
	exhausted := func(reason error) error {
		return &BudgetExhaustedError{
			BestCandidate: best,
			Iterations:    arch.Iterations,
			SelectTime:    arch.SelectTime,
			VerifyTime:    arch.VerifyTime,
			LastStats:     arch.VerifyStats,
			Reason:        reason,
		}
	}
	fullBudget := true
	selection.requireFullBudget(req.MaxSecuredBuses)
	for {
		if err := ctx.Err(); err != nil {
			return nil, exhausted(err)
		}
		if req.MaxIterations > 0 && arch.Iterations >= req.MaxIterations {
			return nil, exhausted(fmt.Errorf("%d iterations reached: %w", req.MaxIterations, ErrBudgetExhausted))
		}
		start := time.Now()
		candidate, selStats, selStatus, selWhy, err := selection.nextCandidate(ctx)
		arch.SelectTime += time.Since(start)
		arch.SelectStats = selStats
		if err != nil {
			return nil, err
		}
		if selStatus == smt.Unknown {
			return nil, exhausted(selWhy)
		}
		if selStatus != smt.Sat {
			if fullBudget {
				// Exhausted the full-budget space (possible when Eq. 30
				// pruning caps candidate size); fall back to any size.
				fullBudget = false
				if err := selection.relaxBudget(); err != nil {
					return nil, fmt.Errorf("synth: relax budget: %w", err)
				}
				continue
			}
			return nil, ErrNoArchitecture
		}
		arch.Iterations++
		best = candidate

		// Verify the candidate: push the security constraints onto every
		// attack model; unsat across all of them means the architecture
		// resists the attacker in every required scenario. Each attack
		// model keeps one long-lived solver across the whole candidate
		// loop — Push/Pop are selector-literal scopes on a persistent
		// SAT+simplex instance, so the UFDI encoding is lowered once and
		// clauses learnt refuting one candidate carry over to the next.
		// Verification runs under the per-candidate deadline and the
		// escalating budget ladder; an Unknown that survives escalation
		// ends the run gracefully with this candidate as best-so-far.
		start = time.Now()
		candCtx, cancelCand := req.Limits.candidateContext(ctx)
		resists := true
		var inconclusive error
		for ai, attack := range attacks {
			if screeningOn(req) {
				verdict, support := screenCandidate(candCtx, scenarios[ai], candidate)
				if verdict == screen.Infeasible {
					// The relaxation proves this scenario resists the
					// candidate; its SMT model is never consulted.
					continue
				}
				if verdict == screen.FeasibleIntegral {
					resists = false
					if len(support) > 0 {
						selection.blockByAttack(support)
					} else {
						selection.blockBySubset(candidate)
					}
					break
				}
			}
			attack.Solver().Push()
			if err := attack.AssertBusesSecured(candidate); err != nil {
				cancelCand()
				return nil, err
			}
			res, err := pol.verifyCandidate(candCtx, attack)
			if popErr := attack.Solver().Pop(); popErr != nil {
				cancelCand()
				return nil, popErr
			}
			if err != nil {
				cancelCand()
				return nil, fmt.Errorf("synth: candidate verification: %w", err)
			}
			arch.VerifyStats = res.Stats
			if res.Inconclusive {
				inconclusive = res.Why
				break
			}
			if res.Feasible {
				resists = false
				if len(res.CompromisedBuses) > 0 {
					selection.blockByAttack(res.CompromisedBuses)
				} else {
					selection.blockBySubset(candidate)
				}
				break
			}
		}
		cancelCand()
		arch.VerifyTime += time.Since(start)
		if inconclusive != nil {
			// Run-level cancellation surfaces as the run's cause, not the
			// candidate's.
			if err := ctx.Err(); err != nil {
				return nil, exhausted(err)
			}
			return nil, exhausted(inconclusive)
		}
		if resists {
			arch.SecuredBuses = candidate
			return arch, nil
		}
	}
}
