package synth

import (
	"errors"
	"testing"

	"segrid/internal/baseline"
	"segrid/internal/core"
	"segrid/internal/grid"
)

// protectsIn checks that an architecture makes the attack scenario unsat.
func protectsIn(t *testing.T, buses []int, sc *core.Scenario) bool {
	t.Helper()
	m, err := core.NewModel(sc)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	if err := m.AssertBusesSecured(buses); err != nil {
		t.Fatalf("AssertBusesSecured: %v", err)
	}
	res, err := m.Check()
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return !res.Feasible
}

func synthesize(t *testing.T, req *Requirements) *Architecture {
	t.Helper()
	arch, err := Synthesize(req)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	return arch
}

// TestScenario1 reproduces the paper's Scenario 1: a 4-bus architecture
// exists against the knowledge- and resource-limited attacker.
func TestScenario1(t *testing.T) {
	req, err := CaseStudyRequirements(1, 4)
	if err != nil {
		t.Fatalf("CaseStudyRequirements: %v", err)
	}
	arch := synthesize(t, req)
	if len(arch.SecuredBuses) > 4 {
		t.Fatalf("architecture %v exceeds 4 buses", arch.SecuredBuses)
	}
	if !protectsIn(t, arch.SecuredBuses, req.Attack) {
		t.Fatalf("synthesized architecture %v does not protect", arch.SecuredBuses)
	}
	// The paper's printed architecture {1,6,7,10} also protects
	// (architectures are not unique; the paper says so explicitly).
	if !protectsIn(t, []int{1, 6, 7, 10}, req.Attack) {
		t.Fatalf("paper's scenario-1 architecture does not protect")
	}
}

// TestScenario2 reproduces the paper's Scenario 2: no 4-bus architecture
// resists the full-knowledge unlimited attacker, and with 5 buses the
// synthesized set matches the paper's {1, 3, 6, 8, 9}.
func TestScenario2(t *testing.T) {
	req4, err := CaseStudyRequirements(2, 4)
	if err != nil {
		t.Fatalf("CaseStudyRequirements: %v", err)
	}
	if _, err := Synthesize(req4); !errors.Is(err, ErrNoArchitecture) {
		t.Fatalf("4-bus synthesis = %v, want ErrNoArchitecture (paper Scenario 2)", err)
	}
	req5, err := CaseStudyRequirements(2, 5)
	if err != nil {
		t.Fatalf("CaseStudyRequirements: %v", err)
	}
	arch := synthesize(t, req5)
	want := []int{1, 3, 6, 8, 9}
	if len(arch.SecuredBuses) != 5 {
		t.Fatalf("architecture %v, want 5 buses", arch.SecuredBuses)
	}
	if !equalInts(arch.SecuredBuses, want) {
		// Architectures are not unique; at minimum the paper's must also
		// protect and ours must verify.
		t.Logf("synthesized %v differs from paper's %v (both may be valid)", arch.SecuredBuses, want)
	}
	if !protectsIn(t, arch.SecuredBuses, req5.Attack) {
		t.Fatalf("synthesized architecture does not protect")
	}
	if !protectsIn(t, want, req5.Attack) {
		t.Fatalf("paper's scenario-2 architecture does not protect")
	}
}

// TestScenario3 reproduces the paper's Scenario 3: with topology poisoning
// of the non-core lines, no 5-bus architecture exists, and a 6-bus one does
// (the paper's {1, 4, 6, 8, 10, 14} among them).
func TestScenario3(t *testing.T) {
	req5, err := CaseStudyRequirements(3, 5)
	if err != nil {
		t.Fatalf("CaseStudyRequirements: %v", err)
	}
	if _, err := Synthesize(req5); !errors.Is(err, ErrNoArchitecture) {
		t.Fatalf("5-bus synthesis = %v, want ErrNoArchitecture (paper Scenario 3)", err)
	}
	req6, err := CaseStudyRequirements(3, 6)
	if err != nil {
		t.Fatalf("CaseStudyRequirements: %v", err)
	}
	arch := synthesize(t, req6)
	if len(arch.SecuredBuses) > 6 {
		t.Fatalf("architecture %v exceeds 6 buses", arch.SecuredBuses)
	}
	// Both the synthesized and the paper's architecture must protect in
	// every admissible topology.
	scenarios := append([]*core.Scenario{req6.Attack}, req6.ExtraAttacks...)
	for i, sc := range scenarios {
		if !protectsIn(t, arch.SecuredBuses, sc) {
			t.Fatalf("synthesized architecture fails topology variant %d", i)
		}
		if !protectsIn(t, []int{1, 4, 6, 8, 10, 14}, sc) {
			t.Fatalf("paper's scenario-3 architecture fails topology variant %d", i)
		}
	}
	if arch.Iterations < 1 {
		t.Fatalf("Iterations = %d, want ≥ 1", arch.Iterations)
	}
	if arch.Duration() <= 0 {
		t.Fatalf("Duration not positive")
	}
}

// TestSynthesisAgreesWithRankCondition cross-validates against Bobba et
// al.: for a full-knowledge unlimited attacker, an architecture protects
// iff the secured measurements' Jacobian rows span the state space.
func TestSynthesisAgreesWithRankCondition(t *testing.T) {
	req, err := CaseStudyRequirements(2, 5)
	if err != nil {
		t.Fatalf("CaseStudyRequirements: %v", err)
	}
	arch := synthesize(t, req)
	meas := core.CaseStudyMeasurements(false)
	for _, j := range arch.SecuredBuses {
		if err := meas.SecureBus(j); err != nil {
			t.Fatalf("SecureBus: %v", err)
		}
	}
	ok, err := baseline.ProtectsAllStates(meas, 1)
	if err != nil {
		t.Fatalf("ProtectsAllStates: %v", err)
	}
	if !ok {
		t.Fatalf("SMT-synthesized architecture %v fails the algebraic rank condition", arch.SecuredBuses)
	}
}

// TestFailedCandidateRankCondition: conversely, a bus set failing the rank
// condition must be attack-feasible.
func TestFailedCandidateRankCondition(t *testing.T) {
	buses := []int{1, 2, 3} // too small to span 13 states
	meas := core.CaseStudyMeasurements(false)
	for _, j := range buses {
		if err := meas.SecureBus(j); err != nil {
			t.Fatalf("SecureBus: %v", err)
		}
	}
	ok, err := baseline.ProtectsAllStates(meas, 1)
	if err != nil {
		t.Fatalf("ProtectsAllStates: %v", err)
	}
	if ok {
		t.Fatalf("3 buses unexpectedly span the state space")
	}
	req, err := CaseStudyRequirements(2, 5)
	if err != nil {
		t.Fatalf("CaseStudyRequirements: %v", err)
	}
	if protectsIn(t, buses, req.Attack) {
		t.Fatalf("SMT model says %v protects; rank condition disagrees", buses)
	}
}

func TestRequirementsValidation(t *testing.T) {
	sc := core.NewScenario(grid.IEEE14())
	sc.AnyState = true
	tests := []struct {
		name string
		req  *Requirements
	}{
		{"nil attack", &Requirements{MaxSecuredBuses: 3}},
		{"zero budget", &Requirements{Attack: sc}},
		{"bad excluded", &Requirements{Attack: sc, MaxSecuredBuses: 3, ExcludedBuses: []int{99}}},
		{"bad required", &Requirements{Attack: sc, MaxSecuredBuses: 3, RequiredBuses: []int{0}}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Synthesize(tc.req); err == nil {
				t.Fatalf("invalid requirements accepted")
			}
		})
	}
}

func TestExcludedBusesRespected(t *testing.T) {
	req, err := CaseStudyRequirements(2, 6)
	if err != nil {
		t.Fatalf("CaseStudyRequirements: %v", err)
	}
	req.ExcludedBuses = []int{6}
	arch := synthesize(t, req)
	for _, j := range arch.SecuredBuses {
		if j == 6 {
			t.Fatalf("excluded bus 6 in architecture %v", arch.SecuredBuses)
		}
	}
	if !protectsIn(t, arch.SecuredBuses, req.Attack) {
		t.Fatalf("architecture does not protect")
	}
}

func TestMaxIterationsBound(t *testing.T) {
	req, err := CaseStudyRequirements(2, 4)
	if err != nil {
		t.Fatalf("CaseStudyRequirements: %v", err)
	}
	req.MaxIterations = 1
	if _, err := Synthesize(req); err == nil {
		t.Fatalf("iteration bound not enforced")
	}
}

// TestPruneOffStillWorks: without Eq. 30 pruning the search space is larger
// but synthesis still converges (ablation path).
func TestPruneOffStillWorks(t *testing.T) {
	req, err := CaseStudyRequirements(1, 4)
	if err != nil {
		t.Fatalf("CaseStudyRequirements: %v", err)
	}
	req.Prune = false
	arch := synthesize(t, req)
	if !protectsIn(t, arch.SecuredBuses, req.Attack) {
		t.Fatalf("architecture does not protect")
	}
}

// TestBudgetRelaxationPath: with aggressive pruning a full-budget candidate
// may be impossible while a smaller architecture exists; the synthesizer
// must fall back rather than give up. Securing 7 of 14 buses under Eq. 30
// pruning (no two adjacent) is at the independence-number edge; use a small
// attacker so a tiny architecture suffices.
func TestBudgetRelaxationPath(t *testing.T) {
	sc := core.NewScenario(grid.IEEE14())
	sc.Meas = core.CaseStudyMeasurements(false)
	sc.TargetStates = []int{12}
	sc.OnlyTargets = true
	req := &Requirements{Attack: sc, MaxSecuredBuses: 7, Prune: true}
	arch := synthesize(t, req)
	if !protectsIn(t, arch.SecuredBuses, sc) {
		t.Fatalf("architecture does not protect")
	}
}

// TestScreenPreFilterAblation runs the scenario-1 synthesis with the LP
// screening pre-filter on (the default), off (the ablation), and on under
// cube-and-conquer: every mode must produce a protecting architecture
// within budget — the pre-filter saves SMT work but never changes what
// counts as a solution.
func TestScreenPreFilterAblation(t *testing.T) {
	modes := []struct {
		name     string
		noScreen bool
		workers  int
	}{
		{"screened", false, 0},
		{"unscreened", true, 0},
		{"screened-cubes", false, 2},
	}
	for _, mode := range modes {
		req, err := CaseStudyRequirements(1, 4)
		if err != nil {
			t.Fatalf("%s: CaseStudyRequirements: %v", mode.name, err)
		}
		req.NoScreen = mode.noScreen
		req.CubeWorkers = mode.workers
		arch := synthesize(t, req)
		if len(arch.SecuredBuses) > 4 {
			t.Fatalf("%s: architecture %v exceeds 4 buses", mode.name, arch.SecuredBuses)
		}
		if !protectsIn(t, arch.SecuredBuses, req.Attack) {
			t.Fatalf("%s: architecture %v does not protect", mode.name, arch.SecuredBuses)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
