package synth

import (
	"context"
	"errors"
	"fmt"
	"time"

	"segrid/internal/core"
	"segrid/internal/smt"
)

// ErrBudgetExhausted is the sentinel wrapped by every BudgetExhaustedError:
// the synthesis run gave up (deadline, iteration cap, or solver budget)
// without proving that no architecture exists. Callers distinguish it from
// ErrNoArchitecture, which is a proof of impossibility.
var ErrBudgetExhausted = errors.New("synth: search budget exhausted")

// BudgetExhaustedError reports a synthesis run that ran out of resources,
// carrying the best candidate found so far plus iteration statistics so
// callers can degrade gracefully instead of losing the whole run.
type BudgetExhaustedError struct {
	// BestCandidate is the most recently proposed candidate (bus or
	// measurement IDs depending on the mechanism). It is the most refined
	// one — every earlier counterexample's support is hit — but it is NOT
	// verified; nil when the run stopped before the first selection.
	BestCandidate []int

	// Iterations is the number of Algorithm 1 iterations completed.
	Iterations int

	// SelectTime and VerifyTime split the wall time spent before giving up.
	SelectTime time.Duration
	VerifyTime time.Duration

	// LastStats is the solver statistics of the last check that ran.
	LastStats smt.Stats

	// Reason is the underlying cause: context.DeadlineExceeded or
	// context.Canceled, a *smt.BudgetError, or ErrBudgetExhausted itself
	// for the iteration cap.
	Reason error
}

// Error implements error.
func (e *BudgetExhaustedError) Error() string {
	msg := fmt.Sprintf("synth: budget exhausted after %d iterations", e.Iterations)
	if e.Reason != nil && !errors.Is(e.Reason, ErrBudgetExhausted) {
		msg += ": " + e.Reason.Error()
	}
	if len(e.BestCandidate) > 0 {
		msg += fmt.Sprintf(" (best unverified candidate %v)", e.BestCandidate)
	}
	return msg
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *BudgetExhaustedError) Unwrap() error { return e.Reason }

// Is makes errors.Is(err, ErrBudgetExhausted) match every instance.
func (e *BudgetExhaustedError) Is(target error) bool { return target == ErrBudgetExhausted }

// Limits bounds a synthesis run. The zero value means unbounded, matching
// the original Algorithm 1 behavior.
type Limits struct {
	// Timeout bounds the whole run's wall clock; exceeding it returns a
	// *BudgetExhaustedError with the best candidate so far.
	Timeout time.Duration

	// CandidateTimeout bounds the verification of a single candidate
	// (across all escalation retries and extra attack profiles).
	CandidateTimeout time.Duration

	// InitialBudget, when non-nil, is the per-verification solver budget of
	// the first attempt. On an Unknown (budget-exhausted) verification the
	// budget is multiplied by BudgetGrowth and the candidate retried, up to
	// MaxEscalations attempts: easy candidates stay fast, hard ones get
	// bounded escalation instead of unbounded search.
	InitialBudget *smt.Budget

	// BudgetGrowth is the escalation multiplier; values < 2 default to 4.
	BudgetGrowth float64

	// MaxEscalations is the number of verification attempts per candidate;
	// ≤ 0 defaults to 4 when InitialBudget is set and 1 otherwise.
	MaxEscalations int
}

// policy is the resolved form of Limits used by the synthesis loops.
type policy struct {
	initial smt.Budget
	growth  float64
	tries   int
}

func (l Limits) policy() policy {
	p := policy{growth: l.BudgetGrowth, tries: l.MaxEscalations}
	if l.InitialBudget != nil {
		p.initial = *l.InitialBudget
	}
	if p.growth < 2 {
		p.growth = 4
	}
	if p.tries <= 0 {
		if p.initial.IsZero() {
			p.tries = 1
		} else {
			p.tries = 4
		}
	}
	return p
}

// runContext applies the whole-run timeout to ctx.
func (l Limits) runContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if l.Timeout > 0 {
		return context.WithTimeout(ctx, l.Timeout)
	}
	return ctx, func() {}
}

// candidateContext applies the per-candidate timeout to ctx.
func (l Limits) candidateContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if l.CandidateTimeout > 0 {
		return context.WithTimeout(ctx, l.CandidateTimeout)
	}
	return ctx, func() {}
}

// verifyCandidate checks one attack model against a candidate (asserted by
// the caller inside the model's current scope) under the escalating budget
// ladder. It returns the final result; res.Inconclusive set means the
// ladder was exhausted without a verdict.
func (p policy) verifyCandidate(ctx context.Context, attack *core.Model) (*core.Result, error) {
	b := p.initial
	var res *core.Result
	for try := 0; try < p.tries; try++ {
		attack.Solver().SetBudget(b)
		var err error
		res, err = attack.CheckContext(ctx)
		if err != nil {
			return nil, err
		}
		if !res.Inconclusive {
			return res, nil
		}
		if ctx.Err() != nil {
			// Deadline or cancellation: a bigger budget cannot help.
			break
		}
		b = b.Scale(p.growth)
	}
	return res, nil
}
