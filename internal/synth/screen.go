package synth

import (
	"context"

	"segrid/internal/core"
	"segrid/internal/screen"
)

// screeningOn decides whether a run uses the LP-relaxation screening
// pre-filter. Proof-logging runs skip it: a candidate check the screen
// answers would leave no certificate in the attack model's stream, and the
// stream's completeness (one certificate per refuting check) is the point
// of asking for proofs.
func screeningOn(req *Requirements) bool {
	return !req.NoScreen && req.ProofDir == ""
}

// screenCandidate runs the LP screening tier on one (attack scenario,
// candidate architecture) pair before any SMT work: the candidate's buses
// are secured on a cloned measurement configuration and the relaxation
// consulted. Infeasible means the scenario provably resists the candidate
// (skip its SMT model entirely); FeasibleIntegral means the candidate is
// provably defeated, with support carrying the witness attack's compromised
// buses for hitting-set blocking; Inconclusive decides nothing and the
// caller falls through to the solver. Screening failures of any kind
// degrade to Inconclusive — the pre-filter can only save work, never
// change a verdict.
func screenCandidate(ctx context.Context, sc *core.Scenario, candidate []int) (screen.Verdict, []int) {
	scc := *sc
	scc.Meas = sc.Meas.Clone()
	for _, j := range candidate {
		if err := scc.Meas.SecureBus(j); err != nil {
			return screen.Inconclusive, nil
		}
	}
	res, err := core.ScreenScenario(ctx, &scc, screen.Options{MaxPivots: screen.DefaultMaxPivots})
	if err != nil {
		return screen.Inconclusive, nil
	}
	if res.Verdict == screen.FeasibleIntegral {
		return res.Verdict, res.Attack.CompromisedBuses
	}
	return res.Verdict, nil
}
