package synth

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"segrid/internal/core"
	"segrid/internal/grid"
	"segrid/internal/smt"
)

// TestBudgetMaxIterations pins satellite behavior: exhausting MaxIterations
// is a *BudgetExhaustedError carrying the best candidate — distinct from
// ErrNoArchitecture, which remains a proof of impossibility.
func TestBudgetMaxIterations(t *testing.T) {
	req, err := CaseStudyRequirements(2, 5)
	if err != nil {
		t.Fatalf("CaseStudyRequirements: %v", err)
	}
	req.MaxIterations = 2 // the scenario needs ~11
	_, err = Synthesize(req)
	if err == nil {
		t.Fatalf("Synthesize succeeded in 2 iterations, want exhaustion")
	}
	if errors.Is(err, ErrNoArchitecture) {
		t.Fatalf("iteration exhaustion reported as ErrNoArchitecture")
	}
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted match", err)
	}
	var be *BudgetExhaustedError
	if !errors.As(err, &be) {
		t.Fatalf("err = %T, want *BudgetExhaustedError", err)
	}
	if be.Iterations != 2 {
		t.Fatalf("Iterations = %d, want 2", be.Iterations)
	}
	if len(be.BestCandidate) == 0 {
		t.Fatalf("BestCandidate empty after two selections")
	}
}

// TestBudgetRunTimeout checks the whole-run deadline degrades gracefully:
// no hang, no goroutine leak, best-so-far candidate reported.
func TestBudgetRunTimeout(t *testing.T) {
	before := runtime.NumGoroutine()
	req, err := CaseStudyRequirements(2, 5)
	if err != nil {
		t.Fatalf("CaseStudyRequirements: %v", err)
	}
	req.Limits = Limits{Timeout: 15 * time.Millisecond}
	start := time.Now()
	_, err = Synthesize(req)
	elapsed := time.Since(start)
	var be *BudgetExhaustedError
	if !errors.As(err, &be) {
		t.Skipf("run finished inside the timeout (%s): %v", elapsed, err)
	}
	if !errors.Is(be.Reason, context.DeadlineExceeded) {
		t.Fatalf("Reason = %v, want context.DeadlineExceeded", be.Reason)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("timed-out run took %s to give up", elapsed)
	}
	for i := 0; i < 100 && runtime.NumGoroutine() > before; i++ {
		time.Sleep(time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("goroutine leak: %d before, %d after", before, got)
	}
}

// TestBudgetEscalationConverges starts verification with a budget far too
// small for the scenario and relies on the escalation ladder: the synthesis
// must still find the paper's architecture instead of giving up.
func TestBudgetEscalationConverges(t *testing.T) {
	req, err := CaseStudyRequirements(2, 5)
	if err != nil {
		t.Fatalf("CaseStudyRequirements: %v", err)
	}
	req.Limits = Limits{
		InitialBudget:  &smt.Budget{MaxConflicts: 2, MaxPivots: 2},
		BudgetGrowth:   8,
		MaxEscalations: 8,
	}
	arch, err := Synthesize(req)
	if err != nil {
		t.Fatalf("Synthesize with escalating budget: %v", err)
	}
	if len(arch.SecuredBuses) == 0 || len(arch.SecuredBuses) > 5 {
		t.Fatalf("architecture %v out of budget", arch.SecuredBuses)
	}
}

// TestBudgetEscalationExhausted caps escalation below what the scenario
// needs: the run must end in BudgetExhaustedError whose Reason is the
// solver's budget, never a bogus architecture or ErrNoArchitecture.
func TestBudgetEscalationExhausted(t *testing.T) {
	req, err := CaseStudyRequirements(2, 5)
	if err != nil {
		t.Fatalf("CaseStudyRequirements: %v", err)
	}
	req.Limits = Limits{
		InitialBudget:  &smt.Budget{MaxConflicts: 1, MaxPivots: 1},
		BudgetGrowth:   2,
		MaxEscalations: 1, // one attempt, no headroom
	}
	// The LP screen would answer these candidate checks without the SMT
	// solver, and this test is specifically about the SMT budget ladder.
	req.NoScreen = true
	_, err = Synthesize(req)
	var be *BudgetExhaustedError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BudgetExhaustedError", err)
	}
	if errors.Is(err, ErrNoArchitecture) {
		t.Fatalf("budget exhaustion matched ErrNoArchitecture")
	}
	var sbe *smt.BudgetError
	if !errors.As(be.Reason, &sbe) {
		t.Fatalf("Reason = %v, want a *smt.BudgetError", be.Reason)
	}
}

// TestBudgetContextCancellation cancels between synthesis iterations via a
// pre-cancelled context: the run must surface the cancellation as a
// BudgetExhaustedError immediately.
func TestBudgetContextCancellation(t *testing.T) {
	req, err := CaseStudyRequirements(2, 5)
	if err != nil {
		t.Fatalf("CaseStudyRequirements: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err = SynthesizeContext(ctx, req)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancelled run took %s to give up", elapsed)
	}
	var be *BudgetExhaustedError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BudgetExhaustedError", err)
	}
	if !errors.Is(be.Reason, context.Canceled) {
		t.Fatalf("Reason = %v, want context.Canceled", be.Reason)
	}
	if be.Iterations != 0 {
		t.Fatalf("Iterations = %d on a pre-cancelled run, want 0", be.Iterations)
	}
}

// TestBudgetMeasurementGranular mirrors the iteration-cap check for the
// measurement-granular mechanism.
func TestBudgetMeasurementGranular(t *testing.T) {
	sc := core.NewScenario(grid.IEEE14())
	sc.AnyState = true
	req := &MeasurementRequirements{
		Attack:                 sc,
		MaxSecuredMeasurements: 13,
		// Two iterations: the first candidate is the empty set; the learnt
		// blocking clause then forces a non-empty second one.
		MaxIterations: 2,
	}
	_, err := SynthesizeMeasurements(req)
	var be *BudgetExhaustedError
	if !errors.As(err, &be) {
		t.Skipf("measurement synthesis finished within two iterations: %v", err)
	}
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted match", err)
	}
	if len(be.BestCandidate) == 0 {
		t.Fatalf("BestCandidate empty after a post-blocking selection")
	}
}
