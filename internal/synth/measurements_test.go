package synth

import (
	"errors"
	"testing"

	"segrid/internal/baseline"
	"segrid/internal/core"
	"segrid/internal/grid"
)

// TestMeasurementSynthesisMatchesBasicMeasurementTheory: against the
// full-knowledge unlimited attacker, Bobba et al. prove that a minimal
// protective measurement set is a basic measurement set of size exactly
// n = b − 1. Measurement-granular synthesis must find a 13-measurement
// architecture on the 14-bus system and prove 12 impossible.
func TestMeasurementSynthesisMatchesBasicMeasurementTheory(t *testing.T) {
	sys := grid.IEEE14()
	attack := func() *core.Scenario {
		sc := core.NewScenario(sys)
		sc.AnyState = true
		return sc
	}
	n := sys.Buses - 1

	arch, err := SynthesizeMeasurements(&MeasurementRequirements{
		Attack:                 attack(),
		MaxSecuredMeasurements: n,
	})
	if err != nil {
		t.Fatalf("SynthesizeMeasurements(%d): %v", n, err)
	}
	if len(arch.SecuredMeasurements) > n {
		t.Fatalf("architecture %v exceeds budget %d", arch.SecuredMeasurements, n)
	}
	// Cross-validate with the algebraic rank condition.
	meas := grid.NewMeasurementConfig(sys)
	if err := meas.Secure(arch.SecuredMeasurements...); err != nil {
		t.Fatalf("Secure: %v", err)
	}
	ok, err := baseline.ProtectsAllStates(meas, 1)
	if err != nil {
		t.Fatalf("ProtectsAllStates: %v", err)
	}
	if !ok {
		t.Fatalf("synthesized measurement set %v fails the rank condition", arch.SecuredMeasurements)
	}

	// The below-n impossibility is confirmed algebraically: any smaller set
	// has rank < n and therefore admits an attack (TestFailedCandidate-
	// RankCondition covers the equivalence); enumerating that proof with
	// Algorithm 1 over C(54,12) candidates is intractable by design, so the
	// synthesis-side impossibility is exercised on a small star system in
	// TestMeasurementSynthesisImpossibilitySmall.
}

// TestMeasurementSynthesisImpossibilitySmall proves, by exhaustion on a
// 4-bus star (n = 3), that no budget of n−1 = 2 measurements protects
// against the unlimited attacker, while n = 3 does.
func TestMeasurementSynthesisImpossibilitySmall(t *testing.T) {
	sys, err := grid.NewSystem("star4", 4, []grid.Line{
		{ID: 1, From: 1, To: 2, Admittance: 5},
		{ID: 2, From: 1, To: 3, Admittance: 4},
		{ID: 3, From: 1, To: 4, Admittance: 3},
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	attack := func() *core.Scenario {
		sc := core.NewScenario(sys)
		sc.AnyState = true
		return sc
	}
	arch, err := SynthesizeMeasurements(&MeasurementRequirements{
		Attack:                 attack(),
		MaxSecuredMeasurements: 3,
	})
	if err != nil {
		t.Fatalf("budget 3: %v", err)
	}
	if len(arch.SecuredMeasurements) > 3 {
		t.Fatalf("architecture %v exceeds budget", arch.SecuredMeasurements)
	}
	if _, err := SynthesizeMeasurements(&MeasurementRequirements{
		Attack:                 attack(),
		MaxSecuredMeasurements: 2,
	}); !errors.Is(err, ErrNoArchitecture) {
		t.Fatalf("budget 2: err = %v, want ErrNoArchitecture", err)
	}
}

// TestMeasurementSynthesisAgainstLimitedAttacker: a weaker attacker needs
// fewer protected measurements than a basic set.
func TestMeasurementSynthesisAgainstLimitedAttacker(t *testing.T) {
	sc := core.NewScenario(grid.IEEE14())
	sc.Meas = core.CaseStudyMeasurements(false)
	sc.TargetStates = []int{12}
	sc.OnlyTargets = true
	arch, err := SynthesizeMeasurements(&MeasurementRequirements{
		Attack:                 sc,
		MaxSecuredMeasurements: 1,
	})
	if err != nil {
		t.Fatalf("SynthesizeMeasurements: %v", err)
	}
	// One protected measurement from the forced vector {12,32,39,46,53}
	// blocks the attack — the paper's Objective 2 observation about
	// measurement 46, generalized.
	if len(arch.SecuredMeasurements) != 1 {
		t.Fatalf("architecture %v, want a single measurement", arch.SecuredMeasurements)
	}
	forced := map[int]bool{12: true, 32: true, 39: true, 46: true, 53: true}
	if !forced[arch.SecuredMeasurements[0]] {
		t.Fatalf("selected %v, want one of the forced vector", arch.SecuredMeasurements)
	}
	// Confirm with the attack model.
	m, err := core.NewModel(sc)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	if err := m.AssertMeasurementsSecured(arch.SecuredMeasurements); err != nil {
		t.Fatalf("AssertMeasurementsSecured: %v", err)
	}
	res, err := m.Check()
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if res.Feasible {
		t.Fatalf("architecture does not block the attack")
	}
}

func TestMeasurementSynthesisValidation(t *testing.T) {
	sc := core.NewScenario(grid.IEEE14())
	sc.AnyState = true
	tests := []struct {
		name string
		req  *MeasurementRequirements
	}{
		{"nil attack", &MeasurementRequirements{MaxSecuredMeasurements: 3}},
		{"zero budget", &MeasurementRequirements{Attack: sc}},
		{"excluded untaken", func() *MeasurementRequirements {
			s := core.NewScenario(grid.IEEE14())
			s.AnyState = true
			if err := s.Meas.Untake(5); err != nil {
				t.Fatalf("Untake: %v", err)
			}
			return &MeasurementRequirements{Attack: s, MaxSecuredMeasurements: 3, ExcludedMeasurements: []int{5}}
		}()},
		{"required untaken", func() *MeasurementRequirements {
			s := core.NewScenario(grid.IEEE14())
			s.AnyState = true
			if err := s.Meas.Untake(5); err != nil {
				t.Fatalf("Untake: %v", err)
			}
			return &MeasurementRequirements{Attack: s, MaxSecuredMeasurements: 3, RequiredMeasurements: []int{5}}
		}()},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := SynthesizeMeasurements(tc.req); err == nil {
				t.Fatalf("invalid requirements accepted")
			}
		})
	}
}

func TestMeasurementSynthesisIterationBound(t *testing.T) {
	sc := core.NewScenario(grid.IEEE14())
	sc.AnyState = true
	req := &MeasurementRequirements{
		Attack:                 sc,
		MaxSecuredMeasurements: 13,
		MaxIterations:          1,
	}
	if _, err := SynthesizeMeasurements(req); err == nil {
		t.Fatalf("iteration bound not enforced")
	}
}

// TestMinChangeExtension: requiring a significant deviation can make an
// attack infeasible when the feasible deviations are boxed below the
// threshold... — here we just confirm (a) MinChange=0 keeps Eq. 5
// semantics, (b) a satisfiable MinChange attack really deviates by ≥ ε,
// and (c) MinChange interacts with OnlyTargets by tolerating sub-threshold
// drift on non-targets.
func TestMinChangeExtension(t *testing.T) {
	sc := core.NewScenario(grid.IEEE14())
	sc.Meas = core.CaseStudyMeasurements(false)
	sc.TargetStates = []int{12}
	sc.OnlyTargets = true
	sc.MinChange = 0.75
	res, err := core.Verify(sc)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !res.Feasible {
		t.Fatalf("MinChange attack infeasible")
	}
	change := res.StateChangeFloat(12)
	if change < 0.75 && change > -0.75 {
		t.Fatalf("Δθ12 = %v, want |Δθ| ≥ 0.75", change)
	}
	// Sub-threshold drift on other states is tolerated under MinChange
	// semantics; every reported change must still respect the attacked
	// threshold only for cx-true states — here only bus 12 is targeted, so
	// any other *significant* change would violate OnlyTargets.
	for bus, c := range res.StateChanges {
		if bus == 12 {
			continue
		}
		f, _ := c.Float64()
		if f >= 0.75 || f <= -0.75 {
			t.Fatalf("non-target bus %d deviates significantly (%v) despite OnlyTargets", bus, f)
		}
	}
	if _, err := core.Verify(func() *core.Scenario {
		s := core.NewScenario(grid.IEEE14())
		s.MinChange = -1
		return s
	}()); err == nil {
		t.Fatalf("negative MinChange accepted")
	}
}
