package synth

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"segrid/internal/core"
	"segrid/internal/proof"
	"segrid/internal/screen"
	"segrid/internal/smt"
)

// harvestDepth is the number of counterexamples a cube worker extracts from
// one candidate's verification scope before moving on: after an attack with
// support S is found, S is secured inside the same pushed scope and the model
// re-checked, forcing the next witness to a disjoint support. Each support is
// a globally valid blocking clause (an attack homed exactly at S defeats any
// candidate securing none of S), so deeper harvesting trades cheap incremental
// re-checks for fewer Algorithm 1 iterations everywhere.
const harvestDepth = 8

// cubeLit fixes one pivot bus's selection bit for a cube.
type cubeLit struct {
	bus     int
	secured bool
}

// supportPool shares counterexample supports across cube workers. Entries are
// append-only and deduplicated; every entry means "any viable candidate must
// secure at least one of these buses" and is valid in every cube — and, more
// broadly, in every synthesis run over the same attack model: supports are
// facts about the attack scenarios alone, independent of the defender's
// budget or bus exclusions, which only shape the selection side.
type supportPool struct {
	mu      sync.Mutex
	seen    map[string]bool
	clauses [][]int
}

func newSupportPool() *supportPool { return &supportPool{seen: make(map[string]bool)} }

// SupportPool is the exported handle to a counterexample-support pool, for
// callers (the analytics service) that persist one across synthesis runs via
// Requirements.SupportPool. All operations are safe for concurrent use, so
// one pool may serve overlapping runs.
type SupportPool = supportPool

// NewSupportPool allocates an empty shareable support pool.
func NewSupportPool() *SupportPool { return newSupportPool() }

// Size reports the number of supports accumulated so far.
func (p *supportPool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.clauses)
}

// publish adds a support (already ascending); it reports whether it was new.
func (p *supportPool) publish(s []int) bool {
	if len(s) == 0 {
		return false
	}
	key := fmt.Sprint(s)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.seen[key] {
		return false
	}
	p.seen[key] = true
	p.clauses = append(p.clauses, append([]int(nil), s...))
	return true
}

// since returns the entries published after cursor plus the new cursor.
// Entries are never mutated after publication, so the returned slice can be
// read without further locking.
func (p *supportPool) since(cursor int) ([][]int, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.clauses[cursor:], len(p.clauses)
}

// pickPivots chooses up to k cube pivot buses: high measurement degree (so
// the sign constraint splits the candidate space meaningfully), never
// operator-excluded or -required (those bits are already fixed), and — when
// Eq. 30 pruning is on — pairwise non-adjacent in the pruning graph, so no
// cube is empty by construction.
func pickPivots(req *Requirements, k int) []int {
	sc := req.Attack
	sys := sc.System()
	banned := make(map[int]bool, len(req.ExcludedBuses)+len(req.RequiredBuses))
	for _, j := range req.ExcludedBuses {
		banned[j] = true
	}
	for _, j := range req.RequiredBuses {
		banned[j] = true
	}
	adj := make(map[int][]int)
	if req.Prune {
		for _, ln := range sys.Lines {
			if sc.Meas.Taken[sys.ForwardFlowMeas(ln.ID)] || sc.Meas.Taken[sys.BackwardFlowMeas(ln.ID)] {
				adj[ln.From] = append(adj[ln.From], ln.To)
				adj[ln.To] = append(adj[ln.To], ln.From)
			}
		}
	}
	type busDeg struct{ bus, deg int }
	degs := make([]busDeg, 0, sys.Buses)
	for j := 1; j <= sys.Buses; j++ {
		if banned[j] {
			continue
		}
		d := 0
		for _, id := range sys.MeasAtBus(j) {
			if sc.Meas.Taken[id] {
				d++
			}
		}
		degs = append(degs, busDeg{j, d})
	}
	sort.Slice(degs, func(a, b int) bool {
		if degs[a].deg != degs[b].deg {
			return degs[a].deg > degs[b].deg
		}
		return degs[a].bus < degs[b].bus
	})
	pivots := make([]int, 0, k)
	chosen := make(map[int]bool, k)
	for _, bd := range degs {
		if len(pivots) == k {
			break
		}
		conflict := false
		for _, nb := range adj[bd.bus] {
			if chosen[nb] {
				conflict = true
				break
			}
		}
		if conflict {
			continue
		}
		pivots = append(pivots, bd.bus)
		chosen[bd.bus] = true
	}
	return pivots
}

// planCubes partitions the candidate space into sign cubes over the pivot
// buses: 2^p cubes for p pivots, p chosen so there is at least one cube per
// worker when enough pivots exist. One worker gets the trivial single cube.
func planCubes(req *Requirements, workers int) [][]cubeLit {
	if workers < 2 {
		return [][]cubeLit{nil}
	}
	k := bits.Len(uint(workers - 1))
	pivots := pickPivots(req, k)
	n := 1 << len(pivots)
	cubes := make([][]cubeLit, n)
	for c := 0; c < n; c++ {
		cube := make([]cubeLit, len(pivots))
		for j, p := range pivots {
			cube[j] = cubeLit{bus: p, secured: c&(1<<j) != 0}
		}
		cubes[c] = cube
	}
	return cubes
}

// disjoint reports whether the sorted candidate secures none of the clause's
// buses — i.e. the blocking clause defeats the candidate outright.
func disjoint(candidate, clause []int) bool {
	for _, j := range clause {
		i := sort.SearchInts(candidate, j)
		if i < len(candidate) && candidate[i] == j {
			return false
		}
	}
	return true
}

// cubeWorker is the per-worker state of a cube-and-conquer run.
type cubeWorker struct {
	id      int
	attacks []*core.Model
	scens   []*core.Scenario // attack scenarios, parallel to attacks (screening)
	writers []*proof.Writer
	paths   []string

	selectTime  time.Duration
	verifyTime  time.Duration
	selectStats smt.Stats
	verifyStats smt.Stats
	best        []int
	emptyCubes  int
	stopErr     error // *BudgetExhaustedError or hard error; nil otherwise
}

// cubeRun is the shared state of a cube-and-conquer run.
type cubeRun struct {
	req     *Requirements
	pol     policy
	cubes   [][]cubeLit
	pool    *supportPool
	nextCub atomic.Int64
	iters   atomic.Int64
	winner  atomic.Int64 // worker id + 1; 0 = unclaimed
	arch    *Architecture
	cancel  context.CancelFunc
}

// claimWin publishes w's verified architecture if no other worker won first.
func (r *cubeRun) claimWin(w *cubeWorker, candidate []int) bool {
	if !r.winner.CompareAndSwap(0, int64(w.id)+1) {
		return false
	}
	r.arch = &Architecture{
		SecuredBuses: candidate,
		SelectTime:   w.selectTime,
		VerifyTime:   w.verifyTime,
		SelectStats:  w.selectStats,
		VerifyStats:  w.verifyStats,
	}
	r.cancel()
	return true
}

// synthesizeCubes runs Algorithm 1 cube-and-conquer style: the candidate
// space is split into sign cubes over pivot buses, workers drain the cube
// queue, and each worker runs the selection/verification loop on its own
// incremental solver instances. Counterexample supports harvested by any
// worker become blocking clauses for all of them, so the fleet converges on
// the hitting set together instead of rediscovering each attack per cube.
func synthesizeCubes(ctx context.Context, req *Requirements, workers int) (res *Architecture, err error) {
	ctx, cancelRun := req.Limits.runContext(ctx)
	defer cancelRun()

	pool := req.SupportPool
	if pool == nil {
		pool = newSupportPool()
	}
	run := &cubeRun{
		req:   req,
		pol:   req.Limits.policy(),
		cubes: planCubes(req, workers),
		pool:  pool,
	}
	if workers > len(run.cubes) {
		workers = len(run.cubes)
	}
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	run.cancel = cancel

	tag := req.ProofTag
	if tag == "" && req.ProofDir != "" {
		tag = proof.UniqueName("", "")
	}

	scenarios := append([]*core.Scenario{req.Attack}, req.ExtraAttacks...)
	ws := make([]*cubeWorker, workers)
	for i := range ws {
		w := &cubeWorker{id: i}
		scs := scenarios
		if req.ProofDir != "" {
			scs, w.writers, w.paths, err = withProofWriters(req.ProofDir, fmt.Sprintf("%s-w%d", tag, i), scenarios)
			if err != nil {
				for _, prev := range ws[:i] {
					abortProofWriters(prev.writers)
				}
				return nil, err
			}
		}
		for _, sc := range scs {
			m, merr := core.NewModel(sc)
			if merr != nil {
				for _, prev := range ws[:i+1] {
					abortProofWriters(prev.writers)
				}
				return nil, fmt.Errorf("synth: attack model: %w", merr)
			}
			w.attacks = append(w.attacks, m)
			w.scens = append(w.scens, sc)
		}
		ws[i] = w
	}

	var wg sync.WaitGroup
	for _, w := range ws {
		wg.Add(1)
		go func(w *cubeWorker) {
			defer wg.Done()
			run.workerLoop(raceCtx, w)
		}(w)
	}
	wg.Wait()

	// Certificate finalization: the winner's streams publish (trimmed, at
	// the canonical names); every other stream is retracted, so a killed or
	// cancelled worker never leaves a half-written certificate behind.
	winner := int(run.winner.Load()) - 1
	var proofFiles []string
	for i, w := range ws {
		if i != winner {
			abortProofWriters(w.writers)
			continue
		}
		closeProofWriters(w.writers, &err)
		if err != nil {
			return nil, err
		}
		for si, staged := range w.paths {
			if _, terr := proof.TrimFile(staged); terr != nil {
				return nil, fmt.Errorf("synth: trimming winner certificate: %w", terr)
			}
			final := filepath.Join(req.ProofDir, fmt.Sprintf("attack-%s-%d.proof", tag, si))
			if rerr := os.Rename(staged, final); rerr != nil {
				return nil, fmt.Errorf("synth: publishing winner certificate: %w", rerr)
			}
			proofFiles = append(proofFiles, final)
		}
	}

	iters := int(run.iters.Load())
	if winner >= 0 {
		arch := run.arch
		arch.Iterations = iters
		arch.Workers = workers
		arch.SelectStats.Workers = workers
		arch.VerifyStats.Workers = workers
		arch.ProofFiles = proofFiles
		return arch, nil
	}

	// No winner: a hard worker error outranks everything; otherwise the run
	// either proved every cube empty (their union is the whole candidate
	// space) or gave up somewhere.
	allEmpty := true
	processed := 0
	var exhausted *BudgetExhaustedError
	for _, w := range ws {
		processed += w.emptyCubes
		if w.stopErr == nil {
			continue
		}
		var be *BudgetExhaustedError
		if errors.As(w.stopErr, &be) {
			allEmpty = false
			if exhausted == nil {
				exhausted = be
			}
			continue
		}
		return nil, w.stopErr
	}
	if allEmpty && processed == len(run.cubes) {
		return nil, ErrNoArchitecture
	}
	if exhausted == nil {
		reason := ctx.Err()
		if reason == nil {
			reason = ErrBudgetExhausted
		}
		exhausted = &BudgetExhaustedError{Reason: reason}
	}
	exhausted.Iterations = iters
	return nil, exhausted
}

// abortProofWriters retracts staged certificate streams (loser/failed
// workers): the atomic temp files are removed instead of published.
func abortProofWriters(writers []*proof.Writer) {
	for _, w := range writers {
		w.Abort(nil)
		w.Close()
	}
}

// workerLoop drains the cube queue. Each cube gets a fresh selection model
// (seeded with every support in the pool); attack models persist across the
// worker's cubes, so clauses learnt refuting one cube's candidates carry
// over to the next.
func (r *cubeRun) workerLoop(ctx context.Context, w *cubeWorker) {
	for {
		if ctx.Err() != nil {
			if r.winner.Load() == 0 {
				w.stopErr = r.exhaustedFor(w, ctx.Err())
			}
			return
		}
		ci := int(r.nextCub.Add(1)) - 1
		if ci >= len(r.cubes) {
			return
		}
		done, err := r.runCube(ctx, w, r.cubes[ci])
		if err != nil {
			if r.winner.Load() == 0 {
				w.stopErr = err
			}
			return
		}
		if done {
			return // this worker won
		}
		w.emptyCubes++
	}
}

// exhaustedFor wraps a give-up cause with the worker's partial progress.
func (r *cubeRun) exhaustedFor(w *cubeWorker, reason error) error {
	return &BudgetExhaustedError{
		BestCandidate: w.best,
		Iterations:    int(r.iters.Load()),
		SelectTime:    w.selectTime,
		VerifyTime:    w.verifyTime,
		LastStats:     w.verifyStats,
		Reason:        reason,
	}
}

// runCube runs the selection/verification loop inside one cube. It returns
// (true, nil) when this worker's verified architecture was published,
// (false, nil) when the cube is exhausted (no viable candidate in it), and a
// non-nil error — *BudgetExhaustedError or a hard failure — otherwise.
func (r *cubeRun) runCube(ctx context.Context, w *cubeWorker, cube []cubeLit) (bool, error) {
	req := r.req
	selection, err := newSelectionModel(req)
	if err != nil {
		return false, err
	}
	for _, cl := range cube {
		f := smt.B(selection.sb[cl.bus])
		if !cl.secured {
			f = smt.Not(f)
		}
		selection.solver.Assert(f)
	}
	seeds, cursor := r.pool.since(0)
	for _, s := range seeds {
		selection.blockByAttack(s)
	}

	fullBudget := true
	selection.requireFullBudget(req.MaxSecuredBuses)
	for {
		if err := ctx.Err(); err != nil {
			return false, r.exhaustedFor(w, err)
		}
		if req.MaxIterations > 0 && int(r.iters.Load()) >= req.MaxIterations {
			return false, r.exhaustedFor(w, fmt.Errorf("%d iterations reached: %w", req.MaxIterations, ErrBudgetExhausted))
		}
		start := time.Now()
		candidate, selStats, selStatus, selWhy, err := selection.nextCandidate(ctx)
		w.selectTime += time.Since(start)
		w.selectStats = selStats
		if err != nil {
			return false, err
		}
		if selStatus == smt.Unknown {
			return false, r.exhaustedFor(w, selWhy)
		}
		if selStatus != smt.Sat {
			if fullBudget {
				fullBudget = false
				if err := selection.relaxBudget(); err != nil {
					return false, fmt.Errorf("synth: relax budget: %w", err)
				}
				continue
			}
			return false, nil // cube exhausted
		}
		r.iters.Add(1)
		w.best = candidate

		// Pre-screen against supports other workers published since the
		// last iteration: a support disjoint from the candidate defeats it
		// without an SMT call.
		var fresh [][]int
		fresh, cursor = r.pool.since(cursor)
		defeated := false
		for _, s := range fresh {
			selection.blockByAttack(s)
			if disjoint(candidate, s) {
				defeated = true
			}
		}
		if defeated {
			continue
		}

		start = time.Now()
		resists, inconclusive, err := r.verifyAndHarvest(ctx, w, selection, candidate)
		w.verifyTime += time.Since(start)
		if err != nil {
			return false, err
		}
		if inconclusive != nil {
			if cerr := ctx.Err(); cerr != nil {
				return false, r.exhaustedFor(w, cerr)
			}
			return false, r.exhaustedFor(w, inconclusive)
		}
		if resists {
			if r.claimWin(w, candidate) {
				return true, nil
			}
			// Raced: another worker published first; stop quietly.
			return false, r.exhaustedFor(w, context.Canceled)
		}
	}
}

// verifyAndHarvest verifies one candidate against every attack model and, on
// a counterexample, harvests up to harvestDepth disjoint-support attacks from
// the same verification scope: each witness's support is secured in-scope and
// the model re-checked, so consecutive witnesses cannot reuse an already-seen
// support. Every support is published to the shared pool and asserted as a
// blocking clause locally. A harvested Unsat only means the candidate PLUS
// the harvested supports resist — it never upgrades the candidate itself.
func (r *cubeRun) verifyAndHarvest(ctx context.Context, w *cubeWorker, selection *selectionModel, candidate []int) (resists bool, inconclusive error, err error) {
	candCtx, cancelCand := r.req.Limits.candidateContext(ctx)
	defer cancelCand()
	for ai, attack := range w.attacks {
		if screeningOn(r.req) {
			verdict, support := screenCandidate(candCtx, w.scens[ai], candidate)
			if verdict == screen.Infeasible {
				continue // relaxation-certified resistance: skip the SMT model
			}
			if verdict == screen.FeasibleIntegral {
				// Definitively defeated; the witness support blocks locally
				// and publishes to every cube. No harvesting — deeper
				// witnesses need the SMT scope this path exists to avoid.
				if len(support) == 0 {
					selection.blockBySubset(candidate)
				} else {
					selection.blockByAttack(support)
					r.pool.publish(support)
				}
				return false, nil, nil
			}
		}
		attack.Solver().Push()
		if err := attack.AssertBusesSecured(candidate); err != nil {
			return false, nil, err
		}
		res, err := r.pol.verifyCandidate(candCtx, attack)
		if err != nil {
			attack.Solver().Pop()
			return false, nil, fmt.Errorf("synth: candidate verification: %w", err)
		}
		w.verifyStats = res.Stats
		if res.Inconclusive {
			if popErr := attack.Solver().Pop(); popErr != nil {
				return false, nil, popErr
			}
			return false, res.Why, nil
		}
		if !res.Feasible {
			if popErr := attack.Solver().Pop(); popErr != nil {
				return false, nil, popErr
			}
			continue
		}

		// Counterexample: block, publish, and harvest deeper witnesses.
		support := res.CompromisedBuses
		if len(support) == 0 {
			selection.blockBySubset(candidate)
		} else {
			selection.blockByAttack(support)
			r.pool.publish(support)
		}
		for h := 1; h < harvestDepth && len(support) > 0; h++ {
			if candCtx.Err() != nil {
				break
			}
			if err := attack.AssertBusesSecured(support); err != nil {
				attack.Solver().Pop()
				return false, nil, err
			}
			res, err = r.pol.verifyCandidate(candCtx, attack)
			if err != nil {
				attack.Solver().Pop()
				return false, nil, fmt.Errorf("synth: harvest verification: %w", err)
			}
			if res.Inconclusive || !res.Feasible || len(res.CompromisedBuses) == 0 {
				break
			}
			support = res.CompromisedBuses
			selection.blockByAttack(support)
			r.pool.publish(support)
		}
		if popErr := attack.Solver().Pop(); popErr != nil {
			return false, nil, popErr
		}
		return false, nil, nil
	}
	return true, nil, nil
}
