package synth

import (
	"context"
	"fmt"
	"sort"
	"time"

	"segrid/internal/core"
	"segrid/internal/proof"
	"segrid/internal/smt"
)

// MeasurementRequirements configures measurement-granular synthesis: the
// paper notes (Section IV-A) that the same mechanism that selects buses
// "can be used for synthesizing security architecture with respect to
// measurements only". The budget counts individual measurements.
type MeasurementRequirements struct {
	// Attack is the attacker profile to defend against.
	Attack *core.Scenario

	// ExtraAttacks lists additional profiles the selection must also
	// resist (see Requirements.ExtraAttacks).
	ExtraAttacks []*core.Scenario

	// MaxSecuredMeasurements is the operator's budget T_SM.
	MaxSecuredMeasurements int

	// ExcludedMeasurements cannot be secured; RequiredMeasurements must be.
	ExcludedMeasurements []int
	RequiredMeasurements []int

	// MaxIterations bounds the synthesis loop; ≤ 0 means unlimited.
	// Exhausting it returns a *BudgetExhaustedError (see Requirements).
	MaxIterations int

	// Limits bounds the run's wall clock and per-candidate solver budgets;
	// the zero value means unbounded.
	Limits Limits

	// Options configures the candidate selection solver; nil means
	// smt.DefaultOptions.
	Options *smt.Options

	// ProofDir enables UNSAT certificate logging for the verification
	// solvers, exactly as Requirements.ProofDir does for bus-granular
	// synthesis (collision-safe per-run file names, atomic publication).
	ProofDir string

	// ProofTag overrides the generated per-run certificate name component;
	// see Requirements.ProofTag.
	ProofTag string
}

// MeasurementArchitecture is a synthesized measurement-protection set.
type MeasurementArchitecture struct {
	// SecuredMeasurements lists the measurement IDs to protect, ascending.
	SecuredMeasurements []int

	// Iterations counts synthesis loop iterations.
	Iterations int

	// SelectTime and VerifyTime split the synthesis wall time.
	SelectTime time.Duration
	VerifyTime time.Duration

	// ProofFiles lists the UNSAT certificate files written during
	// verification when ProofDir was set, in attack-model order.
	ProofFiles []string
}

// Duration is the total synthesis time.
func (a *MeasurementArchitecture) Duration() time.Duration {
	return a.SelectTime + a.VerifyTime
}

// measurementSelection is the candidate model over individual taken
// measurements.
type measurementSelection struct {
	solver  *smt.Solver
	sm      map[int]smt.BoolVar // taken measurement ID → selector
	ids     []int               // taken measurement IDs, ascending
	blocked [][]smt.Formula
}

func newMeasurementSelection(req *MeasurementRequirements) (*measurementSelection, error) {
	sc := req.Attack
	sys := sc.System()
	opts := smt.DefaultOptions()
	if req.Options != nil {
		opts = *req.Options
	}
	m := &measurementSelection{
		solver: smt.NewSolver(opts),
		sm:     make(map[int]smt.BoolVar),
	}
	for id := 1; id <= sys.NumMeasurements(); id++ {
		if !sc.Meas.Taken[id] {
			continue // securing an untaken measurement protects nothing
		}
		m.sm[id] = m.solver.BoolVar(fmt.Sprintf("sm_%d", id))
		m.ids = append(m.ids, id)
	}
	fs := make([]smt.Formula, 0, len(m.ids))
	for _, id := range m.ids {
		fs = append(fs, smt.B(m.sm[id]))
	}
	m.solver.AssertAtMostK(fs, req.MaxSecuredMeasurements)
	for _, id := range req.ExcludedMeasurements {
		v, ok := m.sm[id]
		if !ok {
			return nil, fmt.Errorf("synth: excluded measurement %d is not taken", id)
		}
		m.solver.Assert(smt.Not(smt.B(v)))
	}
	for _, id := range req.RequiredMeasurements {
		v, ok := m.sm[id]
		if !ok {
			return nil, fmt.Errorf("synth: required measurement %d is not taken", id)
		}
		m.solver.Assert(smt.B(v))
	}
	return m, nil
}

func (m *measurementSelection) next(ctx context.Context) ([]int, smt.Status, error, error) {
	res, err := m.solver.CheckContext(ctx)
	if err != nil {
		return nil, smt.Unknown, nil, fmt.Errorf("synth: measurement candidate selection: %w", err)
	}
	if res.Status != smt.Sat {
		return nil, res.Status, res.Why, nil
	}
	var out []int
	for _, id := range m.ids {
		if res.Bool(m.sm[id]) {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out, smt.Sat, nil, nil
}

// blockByAttack learns the hitting-set constraint from a witness attack:
// any candidate securing none of the altered measurements admits the same
// attack.
func (m *measurementSelection) blockByAttack(altered []int) {
	fs := make([]smt.Formula, 0, len(altered))
	for _, id := range altered {
		if v, ok := m.sm[id]; ok {
			fs = append(fs, smt.B(v))
		}
	}
	m.blocked = append(m.blocked, fs)
	m.solver.Assert(smt.Or(fs...))
}

// blockBySubset removes a failed candidate and its subsets (fallback when
// no witness support is available).
func (m *measurementSelection) blockBySubset(failed []int) {
	in := make(map[int]bool, len(failed))
	for _, id := range failed {
		in[id] = true
	}
	fs := make([]smt.Formula, 0, len(m.ids))
	for _, id := range m.ids {
		if !in[id] {
			fs = append(fs, smt.B(m.sm[id]))
		}
	}
	m.blocked = append(m.blocked, fs)
	m.solver.Assert(smt.Or(fs...))
}

// SynthesizeMeasurements runs Algorithm 1 at measurement granularity. It
// is SynthesizeMeasurementsContext with a background context.
func SynthesizeMeasurements(req *MeasurementRequirements) (*MeasurementArchitecture, error) {
	return SynthesizeMeasurementsContext(context.Background(), req)
}

// SynthesizeMeasurementsContext runs measurement-granular synthesis under
// ctx and the requirements' Limits, with the same graceful-degradation
// contract as SynthesizeContext: *BudgetExhaustedError on give-up,
// ErrNoArchitecture only on a proof of impossibility.
func SynthesizeMeasurementsContext(ctx context.Context, req *MeasurementRequirements) (res *MeasurementArchitecture, err error) {
	if req.Attack == nil {
		return nil, fmt.Errorf("synth: requirements carry no attack scenario")
	}
	if req.MaxSecuredMeasurements < 1 {
		return nil, fmt.Errorf("synth: MaxSecuredMeasurements must be positive, got %d", req.MaxSecuredMeasurements)
	}
	ctx, cancelRun := req.Limits.runContext(ctx)
	defer cancelRun()
	pol := req.Limits.policy()

	scenarios := append([]*core.Scenario{req.Attack}, req.ExtraAttacks...)
	var proofFiles []string
	if req.ProofDir != "" {
		var writers []*proof.Writer
		scenarios, writers, proofFiles, err = withProofWriters(req.ProofDir, req.ProofTag, scenarios)
		if err != nil {
			return nil, err
		}
		defer closeProofWriters(writers, &err)
	}
	attacks := make([]*core.Model, 0, len(scenarios))
	for _, sc := range scenarios {
		m, err := core.NewModel(sc)
		if err != nil {
			return nil, fmt.Errorf("synth: attack model: %w", err)
		}
		attacks = append(attacks, m)
	}
	selection, err := newMeasurementSelection(req)
	if err != nil {
		return nil, err
	}

	arch := &MeasurementArchitecture{ProofFiles: proofFiles}
	var best []int
	exhausted := func(reason error) error {
		return &BudgetExhaustedError{
			BestCandidate: best,
			Iterations:    arch.Iterations,
			SelectTime:    arch.SelectTime,
			VerifyTime:    arch.VerifyTime,
			Reason:        reason,
		}
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, exhausted(err)
		}
		if req.MaxIterations > 0 && arch.Iterations >= req.MaxIterations {
			return nil, exhausted(fmt.Errorf("%d iterations reached: %w", req.MaxIterations, ErrBudgetExhausted))
		}
		start := time.Now()
		candidate, selStatus, selWhy, err := selection.next(ctx)
		arch.SelectTime += time.Since(start)
		if err != nil {
			return nil, err
		}
		if selStatus == smt.Unknown {
			return nil, exhausted(selWhy)
		}
		if selStatus != smt.Sat {
			return nil, ErrNoArchitecture
		}
		arch.Iterations++
		best = candidate

		start = time.Now()
		candCtx, cancelCand := req.Limits.candidateContext(ctx)
		resists := true
		var inconclusive error
		for _, attack := range attacks {
			attack.Solver().Push()
			if err := attack.AssertMeasurementsSecured(candidate); err != nil {
				cancelCand()
				return nil, err
			}
			res, err := pol.verifyCandidate(candCtx, attack)
			if popErr := attack.Solver().Pop(); popErr != nil {
				cancelCand()
				return nil, popErr
			}
			if err != nil {
				cancelCand()
				return nil, fmt.Errorf("synth: measurement candidate verification: %w", err)
			}
			if res.Inconclusive {
				inconclusive = res.Why
				break
			}
			if res.Feasible {
				resists = false
				if len(res.AlteredMeasurements) > 0 {
					selection.blockByAttack(res.AlteredMeasurements)
				} else {
					selection.blockBySubset(candidate)
				}
				break
			}
		}
		cancelCand()
		arch.VerifyTime += time.Since(start)
		if inconclusive != nil {
			if err := ctx.Err(); err != nil {
				return nil, exhausted(err)
			}
			return nil, exhausted(inconclusive)
		}
		if resists {
			arch.SecuredMeasurements = candidate
			return arch, nil
		}
	}
}
