package synth

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"segrid/internal/proof"
)

// TestProofDirConcurrentRunsDoNotCollide is the regression test for the
// certificate filename scheme: several synthesis runs sharing one ProofDir
// must each publish their own complete, independently checkable certificate
// stream — no run may truncate or interleave another's.
func TestProofDirConcurrentRunsDoNotCollide(t *testing.T) {
	dir := t.TempDir()
	const runs = 4
	files := make([][]string, runs)
	var wg sync.WaitGroup
	errs := make([]error, runs)
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req, err := CaseStudyRequirements(1, 4)
			if err != nil {
				errs[i] = err
				return
			}
			req.ProofDir = dir
			arch, err := Synthesize(req)
			if err != nil {
				errs[i] = err
				return
			}
			files[i] = arch.ProofFiles
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	seen := make(map[string]int)
	for i, fs := range files {
		if len(fs) == 0 {
			t.Fatalf("run %d reported no proof files", i)
		}
		for _, f := range fs {
			if prev, dup := seen[f]; dup {
				t.Fatalf("runs %d and %d share certificate path %s", prev, i, f)
			}
			seen[f] = i
			rep, err := proof.CheckFile(f)
			if err != nil {
				t.Fatalf("run %d certificate %s invalid: %v", i, f, err)
			}
			if rep.UnsatChecks == 0 {
				t.Fatalf("run %d certificate %s certifies nothing", i, f)
			}
		}
	}
	// Publication is atomic: the directory holds exactly the published
	// certificates, no staging temps.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != len(seen) {
		t.Fatalf("ProofDir holds %d entries, want %d published certificates", len(ents), len(seen))
	}
	for _, e := range ents {
		if !strings.HasPrefix(e.Name(), "attack-") || !strings.HasSuffix(e.Name(), ".proof") {
			t.Fatalf("unexpected file %s in ProofDir", e.Name())
		}
	}
}

// TestProofTagNamesFiles checks an explicit session tag lands in the
// published file names, giving services predictable per-session streams.
func TestProofTagNamesFiles(t *testing.T) {
	dir := t.TempDir()
	req, err := CaseStudyRequirements(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	req.ProofDir = dir
	req.ProofTag = "sess42"
	arch, err := Synthesize(req)
	if err != nil {
		t.Fatal(err)
	}
	want := filepath.Join(dir, "attack-sess42-0.proof")
	if len(arch.ProofFiles) != 1 || arch.ProofFiles[0] != want {
		t.Fatalf("ProofFiles = %v, want [%s]", arch.ProofFiles, want)
	}
	if _, err := os.Stat(want); err != nil {
		t.Fatalf("tagged certificate missing: %v", err)
	}
	if _, err := proof.CheckFile(want); err != nil {
		t.Fatalf("tagged certificate invalid: %v", err)
	}
	// Same tag again would collide by construction; distinct tags coexist.
	req2, err := CaseStudyRequirements(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	req2.ProofDir = dir
	req2.ProofTag = "sess43"
	if _, err := Synthesize(req2); err != nil {
		t.Fatal(err)
	}
	for _, tag := range []string{"sess42", "sess43"} {
		p := filepath.Join(dir, fmt.Sprintf("attack-%s-0.proof", tag))
		if _, err := proof.CheckFile(p); err != nil {
			t.Fatalf("certificate %s invalid after second run: %v", p, err)
		}
	}
}
