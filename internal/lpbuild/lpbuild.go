// Package lpbuild holds the small LP-construction helpers shared by the
// exact-rational linear programs in this repository: the DC-OPF dispatch
// optimizer (internal/dcopf) and the LP-relaxation screening tier
// (internal/screen). Both build on the internal/lra simplex and need the
// same float→rational quantization, bounded-variable idioms and
// line/bus-flow row shapes; keeping one copy here keeps the two models'
// arithmetic identical — which matters for the screen, whose soundness
// contract depends on using exactly the same admittance rationalization as
// the full SMT model in internal/core.
package lpbuild

import (
	"math"
	"math/big"

	"segrid/internal/grid"
	"segrid/internal/lra"
	"segrid/internal/numeric"
)

// Rat converts a float to an exact rational with 1e-9 quantization —
// plenty for p.u. quantities and small enough to keep the exact
// arithmetic in machine words.
func Rat(f float64) *big.Rat {
	return new(big.Rat).SetFrac64(int64(f*1e9+copysign(0.5, f)), 1_000_000_000)
}

func copysign(h, f float64) float64 {
	if f < 0 {
		return -h
	}
	return h
}

// AdmittanceRat converts a line admittance to an exact small rational by
// rounding to four decimals. The paper's data has at most two decimals, so
// embedded cases round-trip exactly; keeping denominators small keeps the
// exact simplex arithmetic fast. internal/core and internal/screen MUST
// share this function: the screen's definitive verdicts transfer to the
// full model only when both talk about the same rational admittances.
func AdmittanceRat(y float64) *big.Rat {
	return big.NewRat(int64(math.Round(y*1e4)), 10000)
}

// Fix asserts v = b (a lower and an upper bound at the same value), both
// carrying tag. It returns the first conflict explanation, if any, while
// the simplex's LastFarkas still describes it.
func Fix(s *lra.Simplex, v int, b numeric.Delta, tag lra.Tag) []lra.Tag {
	if conflict := s.AssertLower(v, b, tag); conflict != nil {
		return conflict
	}
	return s.AssertUpper(v, b, tag)
}

// Box asserts lo ≤ v ≤ hi with per-side tags, returning the first conflict
// explanation, if any.
func Box(s *lra.Simplex, v int, lo, hi numeric.Delta, loTag, hiTag lra.Tag) []lra.Tag {
	if conflict := s.AssertLower(v, lo, loTag); conflict != nil {
		return conflict
	}
	return s.AssertUpper(v, hi, hiTag)
}

// SymmetricBound asserts |v| ≤ lim (−lim ≤ v ≤ +lim) with per-side tags,
// returning the first conflict explanation, if any.
func SymmetricBound(s *lra.Simplex, v int, lim *big.Rat, loTag, hiTag lra.Tag) []lra.Tag {
	lo := numeric.DeltaFromRat(new(big.Rat).Neg(lim))
	return Box(s, v, lo, numeric.DeltaFromRat(lim), loTag, hiTag)
}

// LineFlowTerms is the DC flow row of one line: y·θ_from − y·θ_to over the
// given 1-based angle-variable table.
func LineFlowTerms(theta []int, ln grid.Line, y *big.Rat) []lra.Term {
	return []lra.Term{
		{Var: theta[ln.From], Coeff: y},
		{Var: theta[ln.To], Coeff: new(big.Rat).Neg(y)},
	}
}

// BusFlowTerms is the net-inflow row of bus j: Σ incoming flows − Σ
// outgoing flows over the given 1-based flow-variable table. Callers
// append their own source/consumption terms (generation for dcopf; nothing
// for the screen, whose flow variables are already deltas).
func BusFlowTerms(sys *grid.System, flow []int, j int) []lra.Term {
	var terms []lra.Term
	for _, id := range sys.InLines(j) {
		terms = append(terms, lra.Term{Var: flow[id], Coeff: big.NewRat(1, 1)})
	}
	for _, id := range sys.OutLines(j) {
		terms = append(terms, lra.Term{Var: flow[id], Coeff: big.NewRat(-1, 1)})
	}
	return terms
}
