package cnf

import (
	"math/bits"
	"reflect"
	"testing"

	"segrid/internal/sat"
)

func lit(v int, neg bool) sat.Lit {
	if neg {
		return sat.NegLit(sat.Var(v))
	}
	return sat.PosLit(sat.Var(v))
}

func TestGateClausesShapes(t *testing.T) {
	out := lit(9, false)
	a, b, c := lit(1, false), lit(2, true), lit(3, false)

	got := GateClauses(nil, GateTrue, out, nil)
	want := [][]sat.Lit{{out}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("GateTrue: got %v want %v", got, want)
	}

	got = GateClauses(nil, GateAnd, out, []sat.Lit{a, b, c})
	want = [][]sat.Lit{
		{out.Not(), a}, {out.Not(), b}, {out.Not(), c},
		{out, a.Not(), b.Not(), c.Not()},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("GateAnd: got %v want %v", got, want)
	}

	got = GateClauses(nil, GateOr, out, []sat.Lit{a, b})
	want = [][]sat.Lit{
		{out, a.Not()}, {out, b.Not()},
		{out.Not(), a, b},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("GateOr: got %v want %v", got, want)
	}

	for _, g := range []Gate{GateTrue, GateAnd, GateOr} {
		n := 3
		if g == GateTrue {
			n = 0
		}
		in := []sat.Lit{a, b, c}[:n]
		if got, want := len(GateClauses(nil, g, out, in)), GateClauseCount(g, n); got != want {
			t.Errorf("%v: %d clauses, GateClauseCount says %d", g, got, want)
		}
	}
	if Gate(99).Valid() {
		t.Error("Gate(99) reported valid")
	}
}

// gateEval evaluates the gate semantics directly.
func gateEval(g Gate, inputs []bool) bool {
	switch g {
	case GateTrue:
		return true
	case GateAnd:
		for _, v := range inputs {
			if !v {
				return false
			}
		}
		return true
	case GateOr:
		for _, v := range inputs {
			if v {
				return true
			}
		}
		return false
	}
	panic("bad gate")
}

// TestGateClausesSemantics brute-forces every input assignment and checks the
// clause set is satisfied exactly when out equals the gate's value.
func TestGateClausesSemantics(t *testing.T) {
	for _, g := range []Gate{GateAnd, GateOr} {
		for n := 1; n <= 4; n++ {
			inputs := make([]sat.Lit, n)
			for i := range inputs {
				inputs[i] = lit(i, i%2 == 1) // mix polarities
			}
			out := lit(n, false)
			clauses := GateClauses(nil, g, out, inputs)
			for m := 0; m < 1<<(n+1); m++ {
				val := func(l sat.Lit) bool {
					v := m>>int(l.Var())&1 == 1
					if l.IsNeg() {
						return !v
					}
					return v
				}
				inVals := make([]bool, n)
				for i, in := range inputs {
					inVals[i] = val(in)
				}
				wantSat := val(out) == gateEval(g, inVals)
				gotSat := true
				for _, cl := range clauses {
					cSat := false
					for _, l := range cl {
						if val(l) {
							cSat = true
							break
						}
					}
					if !cSat {
						gotSat = false
						break
					}
				}
				if gotSat != wantSat {
					t.Fatalf("%v n=%d assignment %b: clauses satisfied=%v, equivalence holds=%v", g, n, m, gotSat, wantSat)
				}
			}
		}
	}
}

func TestAtMostKDegenerate(t *testing.T) {
	lits := []sat.Lit{lit(0, false), lit(1, false), lit(2, false)}
	guard := lit(7, true)

	if got := AtMostK(nil, lits, 3, CardSeqCounter, 10, sat.LitUndef); len(got) != 0 {
		t.Errorf("k>=n: got %d clauses, want 0", len(got))
	}
	got := AtMostK(nil, lits, -1, CardSeqCounter, 10, guard)
	if !reflect.DeepEqual(got, [][]sat.Lit{{guard}}) {
		t.Errorf("k<0 guarded: got %v", got)
	}
	got = AtMostK(nil, lits, -1, CardSeqCounter, 10, sat.LitUndef)
	if len(got) != 1 || len(got[0]) != 0 {
		t.Errorf("k<0 unguarded: got %v, want one empty clause", got)
	}
	got = AtMostK(nil, lits, 0, CardPairwise, 10, guard)
	want := [][]sat.Lit{
		{lits[0].Not(), guard}, {lits[1].Not(), guard}, {lits[2].Not(), guard},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("k==0: got %v want %v", got, want)
	}
}

// satisfiable reports whether the clause set has a satisfying assignment over
// variables [0, nVars) by brute force.
func satisfiable(clauses [][]sat.Lit, nVars int, fixed map[sat.Var]bool) bool {
	for m := 0; m < 1<<nVars; m++ {
		ok := true
		for v, want := range fixed {
			if m>>int(v)&1 == 1 != want {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		allSat := true
		for _, cl := range clauses {
			cSat := false
			for _, l := range cl {
				v := m>>int(l.Var())&1 == 1
				if l.IsNeg() {
					v = !v
				}
				if v {
					cSat = true
					break
				}
			}
			if !cSat {
				allSat = false
				break
			}
		}
		if allSat {
			return true
		}
	}
	return false
}

// TestAtMostKSemantics checks both encodings enforce exactly Σ lits ≤ k: for
// every input assignment, the circuit (with registers existentially
// quantified) is satisfiable iff at most k inputs are true.
func TestAtMostKSemantics(t *testing.T) {
	for _, enc := range []CardEncoding{CardSeqCounter, CardPairwise} {
		for n := 1; n <= 4; n++ {
			for k := 0; k < n; k++ {
				inputs := make([]sat.Lit, n)
				for i := range inputs {
					inputs[i] = lit(i, false)
				}
				firstFresh := sat.Var(n)
				fresh := CardFreshVars(n, k, enc)
				clauses := AtMostK(nil, inputs, k, enc, firstFresh, sat.LitUndef)
				if cnt, ok := CardClauseCount(n, k, enc, 1<<20); !ok || cnt != len(clauses) {
					t.Fatalf("%v n=%d k=%d: CardClauseCount=%d ok=%v, actual %d", enc, n, k, cnt, ok, len(clauses))
				}
				maxVar := sat.Var(n - 1)
				for _, cl := range clauses {
					for _, l := range cl {
						if l.Var() > maxVar {
							maxVar = l.Var()
						}
					}
				}
				if int(maxVar) >= n+fresh {
					t.Fatalf("%v n=%d k=%d: clause uses var %d beyond the %d declared fresh vars", enc, n, k, maxVar, fresh)
				}
				for m := 0; m < 1<<n; m++ {
					fixed := make(map[sat.Var]bool, n)
					for i := 0; i < n; i++ {
						fixed[sat.Var(i)] = m>>i&1 == 1
					}
					wantSat := bits.OnesCount(uint(m)) <= k
					if got := satisfiable(clauses, n+fresh, fixed); got != wantSat {
						t.Fatalf("%v n=%d k=%d inputs=%b: satisfiable=%v want %v", enc, n, k, m, got, wantSat)
					}
				}
			}
		}
	}
}

// TestAtMostKGuard checks the guard literal is appended to every clause and
// that setting the guard false satisfies the whole circuit.
func TestAtMostKGuard(t *testing.T) {
	inputs := []sat.Lit{lit(0, false), lit(1, false), lit(2, false)}
	guard := lit(8, true) // ¬selector
	for _, enc := range []CardEncoding{CardSeqCounter, CardPairwise} {
		clauses := AtMostK(nil, inputs, 1, enc, 3, guard)
		for i, cl := range clauses {
			if len(cl) == 0 || cl[len(cl)-1] != guard {
				t.Fatalf("%v clause %d = %v does not end with guard %v", enc, i, cl, guard)
			}
		}
		unguarded := AtMostK(nil, inputs, 1, enc, 3, sat.LitUndef)
		if len(unguarded) != len(clauses) {
			t.Fatalf("%v: guarded %d vs unguarded %d clauses", enc, len(clauses), len(unguarded))
		}
		for i := range unguarded {
			if !reflect.DeepEqual(unguarded[i], clauses[i][:len(clauses[i])-1]) {
				t.Fatalf("%v clause %d: guarded %v vs unguarded %v", enc, i, clauses[i], unguarded[i])
			}
		}
	}
}

func TestCardClauseCountLimit(t *testing.T) {
	if _, ok := CardClauseCount(100, 49, CardPairwise, 1<<24); ok {
		t.Error("C(100,50) fit under 1<<24?")
	}
	if c, ok := CardClauseCount(6, 2, CardPairwise, 1<<24); !ok || c != 20 {
		t.Errorf("C(6,3): got %d ok=%v, want 20", c, ok)
	}
	if c, ok := CardClauseCount(5, 4, CardPairwise, 1<<24); !ok || c != 1 {
		t.Errorf("C(5,5): got %d ok=%v, want 1", c, ok)
	}
	if c, ok := CardClauseCount(10, 3, CardSeqCounter, 1<<24); !ok || c <= 0 {
		t.Errorf("seqcounter count: got %d ok=%v", c, ok)
	}
	if _, ok := CardClauseCount(1<<23, 1<<23-1, CardSeqCounter, 1<<24); ok {
		t.Error("huge seqcounter fit under limit?")
	}
}

// TestArenaMatchesAllocatingDerivation pins the equivalence contract: the
// arena path must produce exactly the clauses of the package-level functions,
// in the same order, across gate shapes, encodings, degenerate bounds and
// guards.
func TestArenaMatchesAllocatingDerivation(t *testing.T) {
	inputs := []sat.Lit{lit(0, false), lit(1, true), lit(2, false), lit(3, true)}
	var a Arena
	for _, g := range []Gate{GateTrue, GateAnd, GateOr} {
		for n := 0; n <= len(inputs); n++ {
			ins := inputs[:n]
			if g == GateTrue {
				ins = nil
			}
			want := GateClauses(nil, g, lit(7, false), ins)
			got := a.GateClauses(g, lit(7, false), ins)
			if !reflect.DeepEqual(copyClauses(got), want) {
				t.Fatalf("%v over %d inputs: arena %v vs alloc %v", g, n, got, want)
			}
		}
	}
	for _, enc := range []CardEncoding{CardSeqCounter, CardPairwise} {
		for _, guard := range []sat.Lit{sat.LitUndef, lit(9, true)} {
			for k := -1; k <= len(inputs); k++ {
				want := AtMostK(nil, inputs, k, enc, 20, guard)
				got := a.AtMostK(inputs, k, enc, 20, guard)
				if !reflect.DeepEqual(copyClauses(got), want) {
					t.Fatalf("%v k=%d guard=%v: arena %v vs alloc %v", enc, k, guard, got, want)
				}
			}
		}
	}
}

func copyClauses(src [][]sat.Lit) [][]sat.Lit {
	var dst [][]sat.Lit
	for _, cl := range src {
		dst = append(dst, append([]sat.Lit(nil), cl...))
	}
	return dst
}

// TestArenaSteadyStateAllocs pins the point of the arena: once its buffers
// have grown to fit a derivation, repeating it allocates nothing.
func TestArenaSteadyStateAllocs(t *testing.T) {
	inputs := []sat.Lit{lit(0, false), lit(1, false), lit(2, false), lit(3, false), lit(4, false)}
	var a Arena
	a.AtMostK(inputs, 2, CardSeqCounter, 20, lit(9, true))
	a.GateClauses(GateAnd, lit(7, false), inputs)
	if avg := testing.AllocsPerRun(50, func() {
		a.AtMostK(inputs, 2, CardSeqCounter, 20, lit(9, true))
		a.GateClauses(GateAnd, lit(7, false), inputs)
	}); avg != 0 {
		t.Errorf("steady-state derivation allocates %.1f times per run, want 0", avg)
	}
}
