// Package cnf is the deterministic formula→CNF encoding kernel shared by the
// solver-side encoder (internal/smt) and the certificate checker
// (internal/proof). Both sides derive definitional clauses by calling the
// same pure functions, so the clauses the solver adds and the clauses the
// checker reconstructs from a certificate's provenance records are
// byte-identical by construction — the encoding step drops out of the proof
// trust boundary and only this kernel (plus internal/numeric) remains
// trusted.
//
// Everything here is purely combinational: no solver state, no allocation
// beyond the returned clause slices, and a fully specified clause order.
// Changing the clause order or shape of any encoding is a certificate format
// change and must be versioned in internal/proof.
//
// Derivation comes in two flavours with identical output: the package-level
// GateClauses/AtMostK functions allocate every clause freshly, while the
// methods on Arena pack all literals of a derivation into one reusable buffer
// so that steady-state derivation is allocation-free. Hot paths (the smt
// encoder and the proof writer, which derive every definitional clause twice
// between them) hold an Arena; the checker and tests may use either.
package cnf

import (
	"fmt"

	"segrid/internal/sat"
)

// Gate names a Tseitin gate shape. The output variable is defined as a pure
// equivalence with the gate applied to the inputs, so gate clauses are valid
// in every scope and never need a guard.
type Gate uint8

const (
	// GateTrue defines its output as the constant true; it has no inputs and
	// a single unit clause. The smt encoder anchors constant formulas on one
	// such literal per solver instance.
	GateTrue Gate = iota + 1
	// GateAnd defines out ↔ (in₁ ∧ … ∧ inₙ).
	GateAnd
	// GateOr defines out ↔ (in₁ ∨ … ∨ inₙ).
	GateOr
)

func (g Gate) String() string {
	switch g {
	case GateTrue:
		return "true"
	case GateAnd:
		return "and"
	case GateOr:
		return "or"
	default:
		return fmt.Sprintf("gate(%d)", uint8(g))
	}
}

// Valid reports whether g is a known gate shape (decoders use it to reject
// corrupt provenance records before deriving clauses).
func (g Gate) Valid() bool { return g >= GateTrue && g <= GateOr }

// GateClauseCount returns how many definitional clauses GateClauses emits
// for a gate with n inputs.
func GateClauseCount(g Gate, n int) int {
	if g == GateTrue {
		return 1
	}
	return n + 1
}

// GateClauses appends the definitional clauses of out ↔ g(inputs) to dst and
// returns it. The clause order is part of the certificate contract:
//
//	GateTrue: (out)
//	GateAnd:  (¬out ∨ inᵢ) for each input in order, then (out ∨ ¬in₁ … ¬inₙ)
//	GateOr:   (out ∨ ¬inᵢ) for each input in order, then (¬out ∨ in₁ … inₙ)
//
// Each returned clause is freshly allocated; dst may be nil.
func GateClauses(dst [][]sat.Lit, g Gate, out sat.Lit, inputs []sat.Lit) [][]sat.Lit {
	var a Arena
	return appendCopies(dst, a.GateClauses(g, out, inputs))
}

// CardEncoding names an at-most-k clause encoding.
type CardEncoding uint8

const (
	// CardSeqCounter is the sequential-counter encoding LT_{n,k} of Sinz
	// (CP 2005): O(n·k) clauses and auxiliary variables, arc-consistent
	// under unit propagation.
	CardSeqCounter CardEncoding = iota + 1
	// CardPairwise is the naive binomial encoding: one clause per
	// (k+1)-subset. Exponential; retained as an ablation baseline.
	CardPairwise
)

func (e CardEncoding) String() string {
	switch e {
	case CardSeqCounter:
		return "seqcounter"
	case CardPairwise:
		return "pairwise"
	default:
		return fmt.Sprintf("cardenc(%d)", uint8(e))
	}
}

// Valid reports whether e is a known cardinality encoding.
func (e CardEncoding) Valid() bool { return e == CardSeqCounter || e == CardPairwise }

// CardFreshVars returns how many consecutive fresh auxiliary variables
// AtMostK consumes for n inputs and bound k under enc. Only the sequential
// counter introduces registers; the degenerate bounds (k < 0, k = 0, k ≥ n)
// need none under either encoding.
func CardFreshVars(n, k int, enc CardEncoding) int {
	if enc == CardSeqCounter && k > 0 && k < n {
		return (n - 1) * k
	}
	return 0
}

// CardClauseCount returns how many clauses AtMostK emits for n inputs and
// bound k under enc. ok is false when the count overflows the given limit
// (relevant for the pairwise encoding's binomial blow-up, and for decoders
// that must bound work before deriving clauses from untrusted records).
func CardClauseCount(n, k int, enc CardEncoding, limit int) (count int, ok bool) {
	switch {
	case k >= n:
		return 0, true
	case k < 0:
		return 1, true
	case k == 0:
		return n, n <= limit
	}
	switch enc {
	case CardSeqCounter:
		// Base row: 1 + (k−1); middle rows (n−2 of them): 2k + 1; final: 1.
		c := k + (n-2)*(2*k+1) + 1
		return c, c <= limit && c >= 0
	case CardPairwise:
		// C(n, k+1) along the diagonal: after step i the accumulator is
		// C(n−r+i, i), itself a binomial ≤ the final value, so checking the
		// limit each step bounds the intermediates (≤ limit·n, well inside int64).
		var c int64 = 1
		r := k + 1
		if n-r < r {
			r = n - r
		}
		for i := 1; i <= r; i++ {
			c = c * int64(n-r+i) / int64(i)
			if c > int64(limit) {
				return 0, false
			}
		}
		return int(c), true
	default:
		return 0, false
	}
}

// AtMostK appends the clauses of Σ lits ≤ k to dst and returns it.
//
// firstFresh is the first of CardFreshVars(len(lits), k, enc) consecutive
// fresh variables used as sequential-counter registers; register s[i][j]
// ("at least j+1 of the first i+1 inputs are true") is variable
// firstFresh + i·k + j. guard, unless sat.LitUndef, is appended verbatim as
// the last literal of every clause: cardinality circuits are one-directional
// constraints (not equivalences), so scoped constraints carry the scope's
// negated selector and stop binding when the scope is popped.
//
// Degenerate bounds mirror the solver encoder exactly: k ≥ n emits nothing,
// k < 0 emits the (guarded) empty clause, k = 0 emits one (guarded) unit per
// input. Each returned clause is freshly allocated; dst may be nil.
func AtMostK(dst [][]sat.Lit, lits []sat.Lit, k int, enc CardEncoding, firstFresh sat.Var, guard sat.Lit) [][]sat.Lit {
	var a Arena
	return appendCopies(dst, a.AtMostK(lits, k, enc, firstFresh, guard))
}

// appendCopies appends a fresh copy of each src clause to dst, detaching the
// package-level derivation functions from the scratch arena they build in.
func appendCopies(dst, src [][]sat.Lit) [][]sat.Lit {
	for _, cl := range src {
		dst = append(dst, append([]sat.Lit(nil), cl...))
	}
	return dst
}

// Arena derives definitional clauses into a reusable buffer: every literal of
// a derivation lands in one backing slice and the returned clauses are
// sub-slices of it, so repeated derivation through the same Arena settles
// into zero allocations. The returned clauses are valid only until the next
// derivation on the same Arena — callers that need them longer must copy
// (sat.Solver.AddClause and the proof checker both copy on ingest).
//
// The zero value is ready to use. An Arena is not safe for concurrent use.
type Arena struct {
	lits  []sat.Lit
	ends  []int
	views [][]sat.Lit
	guard sat.Lit

	subset []sat.Lit // pairwise recursion scratch
}

// begin resets the buffers for a new derivation; guard, unless sat.LitUndef,
// is appended to every clause closed during it.
func (a *Arena) begin(guard sat.Lit) {
	a.lits = a.lits[:0]
	a.ends = a.ends[:0]
	a.guard = guard
}

// grow pre-sizes the buffers for a derivation of nClauses clauses holding
// nLits literals in total, replacing the append-doubling growth chain (and
// its GC churn — large cardinality circuits reach hundreds of kilobytes)
// with at most one exact allocation per buffer.
func (a *Arena) grow(nClauses, nLits int) {
	if cap(a.lits) < nLits {
		a.lits = make([]sat.Lit, 0, nLits)
	}
	if cap(a.ends) < nClauses {
		a.ends = make([]int, 0, nClauses)
	}
	if cap(a.views) < nClauses {
		a.views = make([][]sat.Lit, 0, nClauses)
	}
}

// push appends one literal to the clause currently being built.
func (a *Arena) push(l sat.Lit) { a.lits = append(a.lits, l) }

// close seals the clause currently being built, appending the guard first.
func (a *Arena) close() {
	if a.guard != sat.LitUndef {
		a.lits = append(a.lits, a.guard)
	}
	a.ends = append(a.ends, len(a.lits))
}

// clause emits one complete clause.
func (a *Arena) clause(ls ...sat.Lit) {
	a.lits = append(a.lits, ls...)
	a.close()
}

// finish materializes the clause views. This must happen after all literals
// are in place: growing the backing slice mid-derivation may move it, so
// views taken earlier would dangle.
func (a *Arena) finish() [][]sat.Lit {
	a.views = a.views[:0]
	start := 0
	for _, end := range a.ends {
		a.views = append(a.views, a.lits[start:end:end])
		start = end
	}
	return a.views
}

// GateClauses is the arena-backed equivalent of the package-level
// GateClauses: same clauses in the same order, but the returned slices alias
// the arena and are invalidated by its next derivation.
func (a *Arena) GateClauses(g Gate, out sat.Lit, inputs []sat.Lit) [][]sat.Lit {
	a.begin(sat.LitUndef)
	a.grow(GateClauseCount(g, len(inputs)), 3*len(inputs)+1)
	switch g {
	case GateTrue:
		a.clause(out)
	case GateAnd:
		for _, in := range inputs {
			a.clause(out.Not(), in)
		}
		a.push(out)
		for _, in := range inputs {
			a.push(in.Not())
		}
		a.close()
	case GateOr:
		for _, in := range inputs {
			a.clause(out, in.Not())
		}
		a.push(out.Not())
		for _, in := range inputs {
			a.push(in)
		}
		a.close()
	default:
		panic(fmt.Sprintf("cnf: unknown gate %d", uint8(g)))
	}
	return a.finish()
}

// AtMostK is the arena-backed equivalent of the package-level AtMostK: same
// clauses in the same order, but the returned slices alias the arena and are
// invalidated by its next derivation.
func (a *Arena) AtMostK(lits []sat.Lit, k int, enc CardEncoding, firstFresh sat.Var, guard sat.Lit) [][]sat.Lit {
	n := len(lits)
	a.begin(guard)
	guarded := 0
	if guard != sat.LitUndef {
		guarded = 1
	}
	switch {
	case k >= n:
		return a.finish()
	case k < 0:
		a.clause()
		return a.finish()
	case k == 0:
		a.grow(n, n*(1+guarded))
		for _, l := range lits {
			a.clause(l.Not())
		}
		return a.finish()
	}
	// Pre-size for the circuit about to be derived; clauses are at most
	// 3+guard literals wide for the sequential counter, k+1+guard for the
	// pairwise subsets. Counts over the cap (unreachable for real circuits)
	// fall back to append growth.
	if count, ok := CardClauseCount(n, k, enc, 1<<24); ok {
		width := 3
		if enc == CardPairwise {
			width = k + 1
		}
		a.grow(count, count*(width+guarded))
	}
	switch enc {
	case CardSeqCounter:
		reg := func(i, j int) sat.Lit {
			return sat.PosLit(firstFresh + sat.Var(i*k+j))
		}
		// Base: x0 → s[0][0]; s[0][j] false for j ≥ 1.
		a.clause(lits[0].Not(), reg(0, 0))
		for j := 1; j < k; j++ {
			a.clause(reg(0, j).Not())
		}
		for i := 1; i < n-1; i++ {
			a.clause(lits[i].Not(), reg(i, 0))
			a.clause(reg(i-1, 0).Not(), reg(i, 0))
			for j := 1; j < k; j++ {
				a.clause(lits[i].Not(), reg(i-1, j-1).Not(), reg(i, j))
				a.clause(reg(i-1, j).Not(), reg(i, j))
			}
			a.clause(lits[i].Not(), reg(i-1, k-1).Not())
		}
		a.clause(lits[n-1].Not(), reg(n-2, k-1).Not())
	case CardPairwise:
		a.subset = a.subset[:0]
		var rec func(start int)
		rec = func(start int) {
			if len(a.subset) == k+1 {
				for _, l := range a.subset {
					a.push(l.Not())
				}
				a.close()
				return
			}
			for i := start; i < n; i++ {
				a.subset = append(a.subset, lits[i])
				rec(i + 1)
				a.subset = a.subset[:len(a.subset)-1]
			}
		}
		rec(0)
	default:
		panic(fmt.Sprintf("cnf: unknown cardinality encoding %d", uint8(enc)))
	}
	return a.finish()
}
