// Package segrid's benchmark harness: one benchmark per table and figure of
// the paper's evaluation (Section V), plus ablation benches for the design
// choices called out in DESIGN.md and microbenchmarks of the solver
// substrate. Run with:
//
//	go test -bench=. -benchmem
//
// cmd/benchtables prints the same experiments as paper-style tables.
package segrid

import (
	"context"
	"fmt"
	"testing"

	"segrid/internal/acflow"
	"segrid/internal/acse"
	"segrid/internal/core"
	"segrid/internal/dcflow"
	"segrid/internal/dcopf"
	"segrid/internal/grid"
	"segrid/internal/scenariofile"
	"segrid/internal/se"
	"segrid/internal/service"
	"segrid/internal/smt"
	"segrid/internal/synth"
)

// mustCase loads a registered test system or fails the benchmark.
func mustCase(b *testing.B, name string) *grid.System {
	b.Helper()
	sys, err := grid.Case(name)
	if err != nil {
		b.Fatalf("Case(%s): %v", name, err)
	}
	return sys
}

// verifyScenario mirrors the Fig. 4 timing scenario from
// internal/experiments.
func verifyScenario(sys *grid.System, target int) *core.Scenario {
	sc := core.NewScenario(sys)
	sc.TargetStates = []int{target}
	sc.MaxAlteredMeasurements = sys.NumMeasurements() / 4
	sc.MaxCompromisedBuses = sys.Buses / 4
	return sc
}

func runVerify(b *testing.B, sc *core.Scenario, wantFeasible bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := core.Verify(sc)
		if err != nil {
			b.Fatalf("Verify: %v", err)
		}
		if res.Feasible != wantFeasible {
			b.Fatalf("Feasible = %v, want %v", res.Feasible, wantFeasible)
		}
	}
}

// BenchmarkFig4aVerification measures attack-verification time against
// problem size (paper Fig. 4(a)).
func BenchmarkFig4aVerification(b *testing.B) {
	for _, name := range []string{"ieee14", "ieee30", "ieee57", "ieee118"} {
		sys := mustCase(b, name)
		b.Run(name, func(b *testing.B) {
			runVerify(b, verifyScenario(sys, 1+sys.Buses/2), true)
		})
	}
}

// BenchmarkFig4bTakenMeasurements measures verification time against the
// share of taken measurements (paper Fig. 4(b)).
func BenchmarkFig4bTakenMeasurements(b *testing.B) {
	sys := mustCase(b, "ieee30")
	for _, frac := range []float64{0.6, 0.8, 1.0} {
		b.Run(fmt.Sprintf("taken%.0f%%", frac*100), func(b *testing.B) {
			sc := verifyScenario(sys, 1+sys.Buses/2)
			if err := sc.Meas.KeepFraction(frac); err != nil {
				b.Fatalf("KeepFraction: %v", err)
			}
			runVerify(b, sc, true)
		})
	}
}

// BenchmarkFig4cResourceLimit measures verification time against the
// attacker's resource limit (paper Fig. 4(c)).
func BenchmarkFig4cResourceLimit(b *testing.B) {
	sys := mustCase(b, "ieee30")
	for _, limit := range []int{8, 16, 28} {
		b.Run(fmt.Sprintf("tcz%d", limit), func(b *testing.B) {
			sc := core.NewScenario(sys)
			sc.TargetStates = []int{1 + sys.Buses/2}
			sc.MaxAlteredMeasurements = limit
			runVerify(b, sc, true)
		})
	}
}

// BenchmarkFig4dSatVsUnsat compares satisfiable and unsatisfiable
// verification (paper Fig. 4(d)).
func BenchmarkFig4dSatVsUnsat(b *testing.B) {
	for _, name := range []string{"ieee14", "ieee30", "ieee57"} {
		sys := mustCase(b, name)
		b.Run(name+"/sat", func(b *testing.B) {
			runVerify(b, verifyScenario(sys, 1+sys.Buses/2), true)
		})
		b.Run(name+"/unsat", func(b *testing.B) {
			sc := core.NewScenario(sys)
			sc.AnyState = true
			sc.MaxAlteredMeasurements = 3
			runVerify(b, sc, false)
		})
	}
}

// synthReq builds the Fig. 5 synthesis workload: unrestricted attacker,
// known-feasible budget.
func synthReq(b *testing.B, sys *grid.System, budget int) *synth.Requirements {
	b.Helper()
	sc := core.NewScenario(sys)
	sc.AnyState = true
	return &synth.Requirements{Attack: sc, MaxSecuredBuses: budget, Prune: true}
}

func runSynth(b *testing.B, mk func() *synth.Requirements) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := synth.Synthesize(mk()); err != nil {
			b.Fatalf("Synthesize: %v", err)
		}
	}
}

// Feasible synthesis budgets per system (greedy baseline size + 2,
// precomputed; see internal/experiments.synthRequirements).
var synthBudgets = map[string]int{"ieee14": 7, "ieee30": 12, "ieee57": 23, "ieee118": 43}

// BenchmarkFig5aSynthesis measures synthesis time against problem size
// (paper Fig. 5(a)).
func BenchmarkFig5aSynthesis(b *testing.B) {
	for _, name := range []string{"ieee14", "ieee30", "ieee57"} {
		sys := mustCase(b, name)
		b.Run(name, func(b *testing.B) {
			runSynth(b, func() *synth.Requirements { return synthReq(b, sys, synthBudgets[name]) })
		})
	}
}

// BenchmarkFig5bSynthesisTaken measures synthesis time against the share of
// taken measurements (paper Fig. 5(b)).
func BenchmarkFig5bSynthesisTaken(b *testing.B) {
	sys := mustCase(b, "ieee30")
	for _, frac := range []float64{0.8, 1.0} {
		b.Run(fmt.Sprintf("taken%.0f%%", frac*100), func(b *testing.B) {
			runSynth(b, func() *synth.Requirements {
				req := synthReq(b, sys, synthBudgets["ieee30"]+2)
				meas := grid.NewMeasurementConfig(sys)
				if err := meas.KeepFraction(frac); err != nil {
					b.Fatalf("KeepFraction: %v", err)
				}
				req.Attack.Meas = meas
				return req
			})
		})
	}
}

// BenchmarkFig5cSynthesisLimit measures synthesis time against the
// attacker's resource limit (paper Fig. 5(c)).
func BenchmarkFig5cSynthesisLimit(b *testing.B) {
	sys := mustCase(b, "ieee30")
	for _, pct := range []int{40, 80, 100} {
		b.Run(fmt.Sprintf("tcz%d%%", pct), func(b *testing.B) {
			runSynth(b, func() *synth.Requirements {
				req := synthReq(b, sys, synthBudgets["ieee30"])
				req.Attack.MaxAlteredMeasurements = pct * sys.NumMeasurements() / 100
				return req
			})
		})
	}
}

// BenchmarkFig5dSynthesisUnsat measures synthesis time in unsatisfiable
// cases as the operator budget approaches the minimum from below (paper
// Fig. 5(d); the 30-bus minimum is 11 buses).
func BenchmarkFig5dSynthesisUnsat(b *testing.B) {
	sys := mustCase(b, "ieee30")
	for _, budget := range []int{8, 10} {
		b.Run(fmt.Sprintf("budget%d", budget), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				req := synthReq(b, sys, budget)
				if _, err := synth.Synthesize(req); err == nil {
					b.Fatalf("budget %d unexpectedly satisfiable", budget)
				}
			}
		})
	}
}

// BenchmarkTableIVModelMemory builds and solves the unrestricted-attacker
// verification model; -benchmem's B/op column is the Table IV analogue.
func BenchmarkTableIVModelMemory(b *testing.B) {
	for _, name := range []string{"ieee14", "ieee30", "ieee57", "ieee118"} {
		sys := mustCase(b, name)
		b.Run(name, func(b *testing.B) {
			sc := core.NewScenario(sys)
			sc.AnyState = true
			runVerify(b, sc, true)
		})
	}
}

// BenchmarkCaseStudyObjective1 times the paper's Section III-I Objective 1
// verification (16 measurements / 7 buses, distinct amounts).
func BenchmarkCaseStudyObjective1(b *testing.B) {
	sc := core.NewScenario(core.CaseStudyMeasurements(true).System())
	sc.Meas = core.CaseStudyMeasurements(true)
	sc.Knowledge = core.CaseStudyKnowledge()
	sc.TargetStates = []int{9, 10}
	sc.MaxAlteredMeasurements = 16
	sc.MaxCompromisedBuses = 7
	sc.DistinctPairs = [][2]int{{9, 10}}
	runVerify(b, sc, true)
}

// BenchmarkCaseStudyObjective2 times the topology-poisoning variant of
// Objective 2.
func BenchmarkCaseStudyObjective2(b *testing.B) {
	sc := core.NewScenario(core.CaseStudyMeasurements(false).System())
	sc.Meas = core.CaseStudyMeasurements(false)
	if err := sc.Meas.Secure(46); err != nil {
		b.Fatalf("Secure: %v", err)
	}
	sc.TargetStates = []int{12}
	sc.OnlyTargets = true
	sc.AllowExclusion = true
	sc.AllowInclusion = true
	sc.InService, sc.FixedLines, sc.SecuredStatus = core.CaseStudyTopology()
	runVerify(b, sc, true)
}

// --- ablation benches (design choices from DESIGN.md) -------------------

// BenchmarkAblationCardinality compares the sequential-counter at-most-k
// encoding against the naive binomial encoding. The constraint counts the
// 14 bus-compromise variables (T_CB = 3): the binomial encoding is
// C(14,4) = 1001 clauses here, but would be C(44,7) ≈ 38 million on the
// measurement-count constraint — which is exactly why the sequential
// counter is the default.
func BenchmarkAblationCardinality(b *testing.B) {
	mk := func(naive bool) *core.Scenario {
		sc := core.NewScenario(core.CaseStudyMeasurements(false).System())
		sc.Meas = core.CaseStudyMeasurements(false)
		sc.TargetStates = []int{12}
		sc.MaxCompromisedBuses = 3
		opts := smt.DefaultOptions()
		opts.NaiveCardinality = naive
		sc.Options = &opts
		return sc
	}
	b.Run("seqcounter", func(b *testing.B) { runVerify(b, mk(false), true) })
	b.Run("binomial", func(b *testing.B) { runVerify(b, mk(true), true) })
}

// BenchmarkAblationTheoryCheck compares eager DPLL(T) (simplex check at
// every propagation fixpoint) against the lazy variant (full Boolean
// assignments only).
func BenchmarkAblationTheoryCheck(b *testing.B) {
	sys := mustCase(b, "ieee57")
	mk := func(eager bool) *core.Scenario {
		sc := verifyScenario(sys, 1+sys.Buses/2)
		opts := smt.DefaultOptions()
		opts.TheoryCheckAtFixpoint = eager
		sc.Options = &opts
		return sc
	}
	b.Run("fixpoint", func(b *testing.B) { runVerify(b, mk(true), true) })
	b.Run("finalonly", func(b *testing.B) { runVerify(b, mk(false), true) })
}

// BenchmarkAblationPruning compares synthesis with and without the Eq. 30
// candidate-space reduction.
func BenchmarkAblationPruning(b *testing.B) {
	sys := mustCase(b, "ieee30")
	for _, prune := range []bool{true, false} {
		name := "eq30"
		if !prune {
			name = "noprune"
		}
		b.Run(name, func(b *testing.B) {
			runSynth(b, func() *synth.Requirements {
				req := synthReq(b, sys, synthBudgets["ieee30"])
				req.Prune = prune
				return req
			})
		})
	}
}

// --- substrate microbenchmarks ------------------------------------------

// BenchmarkWLSEstimation measures one full WLS estimation on each system.
func BenchmarkWLSEstimation(b *testing.B) {
	for _, name := range []string{"ieee14", "ieee57", "ieee300"} {
		sys := mustCase(b, name)
		b.Run(name, func(b *testing.B) {
			meas := grid.NewMeasurementConfig(sys)
			est, err := se.NewEstimator(meas, se.Config{RefBus: 1, Sigma: 0.01})
			if err != nil {
				b.Fatalf("NewEstimator: %v", err)
			}
			angles := make([]float64, sys.Buses+1)
			for j := 2; j <= sys.Buses; j++ {
				angles[j] = 0.01 * float64(j%9)
			}
			z, err := dcflow.MeasureAll(sys, nil, angles)
			if err != nil {
				b.Fatalf("MeasureAll: %v", err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := est.Estimate(z); err != nil {
					b.Fatalf("Estimate: %v", err)
				}
			}
		})
	}
}

// BenchmarkSMTSolver measures the SMT substrate on a pure pigeonhole
// instance (propositional stress) and a linear-arithmetic chain.
func BenchmarkSMTSolver(b *testing.B) {
	b.Run("pigeonhole7", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := smt.NewSolver(smt.DefaultOptions())
			const holes = 7
			vars := make([][]smt.BoolVar, holes+1)
			for p := range vars {
				vars[p] = make([]smt.BoolVar, holes)
				for h := range vars[p] {
					vars[p][h] = s.BoolVar("v")
				}
			}
			for p := 0; p <= holes; p++ {
				fs := make([]smt.Formula, holes)
				for h := 0; h < holes; h++ {
					fs[h] = smt.B(vars[p][h])
				}
				s.Assert(smt.Or(fs...))
			}
			for h := 0; h < holes; h++ {
				fs := make([]smt.Formula, holes+1)
				for p := 0; p <= holes; p++ {
					fs[p] = smt.B(vars[p][h])
				}
				s.AssertAtMostK(fs, 1)
			}
			res, err := s.Check()
			if err != nil || res.Status != smt.Unsat {
				b.Fatalf("pigeonhole: %v %v", res.Status, err)
			}
		}
	})
	b.Run("lra-chain200", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := smt.NewSolver(smt.DefaultOptions())
			prev := s.RealVar("x0")
			s.Assert(smt.GE(smt.NewLinExpr().TermInt(1, prev), ratInt(0)))
			for k := 1; k < 200; k++ {
				cur := s.RealVar("x")
				diff := smt.NewLinExpr().TermInt(1, cur).TermInt(-1, prev)
				s.Assert(smt.GE(diff, ratInt(1)))
				prev = cur
			}
			s.Assert(smt.LE(smt.NewLinExpr().TermInt(1, prev), ratInt(100)))
			res, err := s.Check()
			if err != nil || res.Status != smt.Unsat {
				b.Fatalf("chain: %v %v", res.Status, err)
			}
		}
	})
}

// --- extension benches ----------------------------------------------------

// BenchmarkACPowerFlow measures one Newton–Raphson solve on the lifted
// 14- and 30-bus networks.
func BenchmarkACPowerFlow(b *testing.B) {
	for _, name := range []string{"ieee14", "ieee30"} {
		sys := mustCase(b, name)
		n, err := acflow.FromDC(sys, 0.1, 0.02)
		if err != nil {
			b.Fatalf("FromDC: %v", err)
		}
		p := make([]float64, n.Buses+1)
		q := make([]float64, n.Buses+1)
		for j := 2; j <= n.Buses; j++ {
			p[j] = -0.05
			q[j] = -0.015
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := n.Solve(acflow.FlowCase{Slack: 1, SlackV: 1.02, P: p, Q: q}); err != nil {
					b.Fatalf("Solve: %v", err)
				}
			}
		})
	}
}

// BenchmarkACStateEstimation measures one Gauss–Newton WLS estimation over
// the full AC measurement set.
func BenchmarkACStateEstimation(b *testing.B) {
	sys := mustCase(b, "ieee14")
	n, err := acflow.FromDC(sys, 0.1, 0.02)
	if err != nil {
		b.Fatalf("FromDC: %v", err)
	}
	p := make([]float64, n.Buses+1)
	q := make([]float64, n.Buses+1)
	for j := 2; j <= n.Buses; j++ {
		p[j] = -0.05
		q[j] = -0.015
	}
	st, err := n.Solve(acflow.FlowCase{Slack: 1, SlackV: 1.02, P: p, Q: q})
	if err != nil {
		b.Fatalf("Solve: %v", err)
	}
	ms := acse.FullMeasurementSet(n)
	z, err := acse.MeasureAll(n, st, ms)
	if err != nil {
		b.Fatalf("MeasureAll: %v", err)
	}
	est, err := acse.NewEstimator(n, ms, 1, 0.01)
	if err != nil {
		b.Fatalf("NewEstimator: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Estimate(z); err != nil {
			b.Fatalf("Estimate: %v", err)
		}
	}
}

// BenchmarkDCOPF measures one exact-rational optimal dispatch.
func BenchmarkDCOPF(b *testing.B) {
	for _, name := range []string{"ieee14", "ieee30"} {
		sys := mustCase(b, name)
		load := make([]float64, sys.Buses+1)
		for j := 2; j <= sys.Buses; j++ {
			load[j] = 0.05
		}
		c := &dcopf.Case{
			Sys: sys,
			Gens: []dcopf.Generator{
				{Bus: 1, MinP: 0, MaxP: 2, Cost: 20},
				{Bus: 3, MinP: 0, MaxP: 1, Cost: 35},
			},
			Load:   load,
			RefBus: 1,
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := c.Solve(); err != nil {
					b.Fatalf("Solve: %v", err)
				}
			}
		})
	}
}

// BenchmarkMeasurementSynthesis measures the measurement-granular
// Algorithm 1 against the unlimited attacker on the 14-bus system.
func BenchmarkMeasurementSynthesis(b *testing.B) {
	sys := mustCase(b, "ieee14")
	for i := 0; i < b.N; i++ {
		sc := core.NewScenario(sys)
		sc.AnyState = true
		if _, err := synth.SynthesizeMeasurements(&synth.MeasurementRequirements{
			Attack:                 sc,
			MaxSecuredMeasurements: sys.Buses - 1,
		}); err != nil {
			b.Fatalf("SynthesizeMeasurements: %v", err)
		}
	}
}

// BenchmarkSweepVsSequential measures the service-layer batched sweep
// against the batch-unaware baseline on a fig5a-style family: the obj2 case
// study under per-item secured-measurement deltas. The sequential variant
// answers each item as its own verification with the delta folded into a
// self-contained spec (one cold encoder build per item); the sweep variant
// answers the whole family through one /v1/sweep plan — one pooled encoder,
// per-item scoped overlays. A fresh service per iteration keeps every build
// inside the timed loop. internal/experiments mirrors this pair as the
// sweep/ rows of the BENCH_<n>.json trajectory.
func BenchmarkSweepVsSequential(b *testing.B) {
	base := scenariofile.AttackSpec{
		Case:        "ieee14",
		Untaken:     []int{5, 10, 14, 19, 22, 27, 30, 35, 43, 52},
		Targets:     []int{12},
		OnlyTargets: true,
	}
	ids := []int{1, 2, 3, 4, 6, 7, 8, 9, 11, 46}
	items := []service.SweepItem{{}}
	for _, id := range ids {
		items = append(items, service.SweepItem{SecuredMeasurements: []int{id}})
	}
	newSvc := func(b *testing.B) *service.Service {
		svc, err := service.New(service.Config{Portfolio: 1})
		if err != nil {
			b.Fatalf("service.New: %v", err)
		}
		return svc
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			svc := newSvc(b)
			for _, it := range items {
				spec := base
				spec.Secured = append([]int(nil), it.SecuredMeasurements...)
				resp, err := svc.Verify(context.Background(), &service.VerifyRequest{Attack: spec})
				if err != nil {
					b.Fatalf("Verify: %v", err)
				}
				if resp.Status != "feasible" && resp.Status != "infeasible" {
					b.Fatalf("inconclusive: %s", resp.Why)
				}
			}
			svc.Close()
		}
	})
	b.Run("sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			svc := newSvc(b)
			resp, err := svc.Sweep(context.Background(), &service.SweepRequest{Attack: base, Items: items})
			if err != nil {
				b.Fatalf("Sweep: %v", err)
			}
			if resp.EncoderBuilds != 1 {
				b.Fatalf("sweep paid %d encoder builds, want 1", resp.EncoderBuilds)
			}
			for j, item := range resp.Items {
				if item.Status != "feasible" && item.Status != "infeasible" {
					b.Fatalf("item %d inconclusive: %s", j, item.Why)
				}
			}
			svc.Close()
		}
	})
}

// BenchmarkLNRIdentification measures one full LNR pass with a planted
// gross error.
func BenchmarkLNRIdentification(b *testing.B) {
	sys := mustCase(b, "ieee14")
	meas := grid.NewMeasurementConfig(sys)
	est, err := se.NewEstimator(meas, se.Config{RefBus: 1, Sigma: 0.005})
	if err != nil {
		b.Fatalf("NewEstimator: %v", err)
	}
	angles := make([]float64, sys.Buses+1)
	for j := 2; j <= sys.Buses; j++ {
		angles[j] = 0.01 * float64(j%5)
	}
	z, err := dcflow.MeasureAll(sys, nil, angles)
	if err != nil {
		b.Fatalf("MeasureAll: %v", err)
	}
	z[9] += 0.8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.IdentifyBadData(z, 3.5, 3); err != nil {
			b.Fatalf("IdentifyBadData: %v", err)
		}
	}
}
