module segrid

go 1.22
