// Topologypoisoning demonstrates the paper's headline novelty end to end:
// an attacker who cannot beat a protected measurement with classical false
// data injection wins by poisoning the topology processor instead. The
// example replays the attack against a real WLS estimator and shows the
// bad data detector stays silent while the bus-12 state estimate drifts.
package main

import (
	"fmt"
	"log"
	"math"

	"segrid/internal/core"
	"segrid/internal/dcflow"
	"segrid/internal/grid"
	"segrid/internal/se"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys := grid.IEEE14()
	meas := core.CaseStudyMeasurements(false)
	if err := meas.Secure(46); err != nil {
		return err
	}
	fmt.Println("IEEE 14-bus, Table III measurement set, measurement 46 (bus 6 injection) protected")

	// Without topology attacks the formal model proves the attack on state
	// 12 impossible.
	sc := core.NewScenario(sys)
	sc.Meas = meas
	sc.TargetStates = []int{12}
	sc.OnlyTargets = true
	res, err := core.Verify(sc)
	if err != nil {
		return err
	}
	fmt.Printf("classical FDI attack on state 12: feasible = %v\n", res.Feasible)

	// With exclusion/inclusion attacks on the non-core lines it succeeds.
	sc.AllowExclusion = true
	sc.AllowInclusion = true
	sc.InService, sc.FixedLines, sc.SecuredStatus = core.CaseStudyTopology()
	res, err = core.Verify(sc)
	if err != nil {
		return err
	}
	fmt.Printf("with topology poisoning:          feasible = %v, exclude lines %v, alter %v\n",
		res.Feasible, res.ExcludedLines, res.AlteredMeasurements)
	if !res.Feasible || len(res.ExcludedLines) != 1 || res.ExcludedLines[0] != 13 {
		return fmt.Errorf("expected the paper's line-13 exclusion attack")
	}

	// Replay against a real estimator. The attacker scales Δθ12 to the
	// base case so the protected measurement 46 needs no change: the line
	// 12 flow delta and the vanished line 13 flow cancel at bus 6.
	cons := make([]float64, sys.Buses+1)
	total := 0.0
	for j := 2; j <= sys.Buses; j++ {
		cons[j] = 0.08 + 0.015*float64(j%5)
		total += cons[j]
	}
	cons[1] = -total
	angles, err := dcflow.SolveFlow(sys, cons, 1)
	if err != nil {
		return err
	}
	z, err := dcflow.MeasureAll(sys, nil, angles)
	if err != nil {
		return err
	}

	y12 := sys.Line(12).Admittance
	y13 := sys.Line(13).Admittance
	flow13 := y13 * (angles[6] - angles[13])
	dtheta12 := -flow13 / y12

	poisoned := dcflow.AllMapped(sys)
	poisoned[13] = false
	attackedAngles := append([]float64(nil), angles...)
	attackedAngles[12] += dtheta12
	zWant, err := dcflow.MeasureAll(sys, poisoned, attackedAngles)
	if err != nil {
		return err
	}
	attacked := append([]float64(nil), z...)
	altered := []int{}
	for id := 1; id <= sys.NumMeasurements(); id++ {
		if meas.Taken[id] && math.Abs(zWant[id]-z[id]) > 1e-9 {
			attacked[id] = zWant[id]
			altered = append(altered, id)
		}
	}
	fmt.Printf("concrete injection (base-case scaled): alter %v, Δθ12 = %+.5f rad\n", altered, dtheta12)

	// The control center, believing line 13 is open, estimates over the
	// poisoned topology — and sees nothing wrong.
	const sigma = 0.01
	est, err := se.NewEstimator(meas, se.Config{RefBus: 1, Sigma: sigma, Mapped: poisoned})
	if err != nil {
		return err
	}
	det, err := se.NewDetector(est, 0.05)
	if err != nil {
		return err
	}
	sol, err := est.Estimate(attacked)
	if err != nil {
		return err
	}
	fmt.Printf("operator view: J = %.3e (τ = %.2f), bad data detected: %v\n",
		sol.J, det.Threshold(), det.BadDataDetected(sol))
	fmt.Printf("operator's bus-12 angle: %+.5f rad (truth %+.5f rad) — silently wrong by %+.5f\n",
		sol.Angles[12], angles[12], sol.Angles[12]-angles[12])
	return nil
}
