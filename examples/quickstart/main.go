// Quickstart: load the IEEE 14-bus system, run weighted-least-squares state
// estimation with noisy SCADA measurements, watch the chi-square bad data
// detector catch a gross error — and then watch a model-derived stealthy
// false data injection attack sail straight through it.
package main

import (
	"fmt"
	"log"

	"segrid/internal/core"
	"segrid/internal/dcflow"
	"segrid/internal/grid"
	"segrid/internal/se"
	"segrid/internal/stat"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys := grid.IEEE14()
	meas := grid.NewMeasurementConfig(sys)
	fmt.Printf("IEEE 14-bus: %d lines, %d potential measurements\n",
		sys.NumLines(), sys.NumMeasurements())

	// A plausible operating point: loads on every bus, slack on bus 1.
	cons := make([]float64, sys.Buses+1)
	total := 0.0
	for j := 2; j <= sys.Buses; j++ {
		cons[j] = 0.1 + 0.01*float64(j)
		total += cons[j]
	}
	cons[1] = -total
	angles, err := dcflow.SolveFlow(sys, cons, 1)
	if err != nil {
		return err
	}

	// SCADA measurements with Gaussian noise.
	const sigma = 0.004
	z, err := dcflow.MeasureAll(sys, nil, angles)
	if err != nil {
		return err
	}
	noise := stat.NewNormalSampler(1)
	for id := 1; id <= sys.NumMeasurements(); id++ {
		z[id] += noise.Sample(0, sigma)
	}

	// Weighted least squares estimation + chi-square bad data detection.
	est, err := se.NewEstimator(meas, se.Config{RefBus: 1, Sigma: sigma})
	if err != nil {
		return err
	}
	det, err := se.NewDetector(est, 0.05)
	if err != nil {
		return err
	}
	sol, err := est.Estimate(z)
	if err != nil {
		return err
	}
	fmt.Printf("clean estimate:   J = %8.2f  (τ = %.2f)  bad data: %v\n",
		sol.J, det.Threshold(), det.BadDataDetected(sol))

	// A gross error trips the detector...
	zBad := append([]float64(nil), z...)
	zBad[7] += 1.0
	solBad, err := est.Estimate(zBad)
	if err != nil {
		return err
	}
	fmt.Printf("gross error:      J = %8.2f  (τ = %.2f)  bad data: %v\n",
		solBad.J, det.Threshold(), det.BadDataDetected(solBad))

	// ...but a coordinated injection synthesized by the formal attack model
	// does not, despite corrupting the bus-12 state estimate.
	sc := core.NewScenario(sys)
	sc.TargetStates = []int{12}
	res, err := core.Verify(sc)
	if err != nil {
		return err
	}
	if !res.Feasible {
		return fmt.Errorf("quickstart: attack model unexpectedly unsat")
	}
	deltas, err := core.FloatMeasurementDeltas(sc, res)
	if err != nil {
		return err
	}
	zAtt := append([]float64(nil), z...)
	for id := 1; id <= sys.NumMeasurements(); id++ {
		zAtt[id] += deltas[id]
	}
	solAtt, err := est.Estimate(zAtt)
	if err != nil {
		return err
	}
	fmt.Printf("stealthy attack:  J = %8.2f  (τ = %.2f)  bad data: %v\n",
		solAtt.J, det.Threshold(), det.BadDataDetected(solAtt))
	fmt.Printf("  altered measurements: %v\n", res.AlteredMeasurements)
	fmt.Printf("  bus 12 estimate drifted %.4f rad while the residual moved %.2e\n",
		solAtt.Angles[12]-sol.Angles[12], solAtt.J-sol.J)
	return nil
}
