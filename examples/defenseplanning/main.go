// Defenseplanning synthesizes cost-effective security architectures
// (paper Section IV) for the 14- and 30-bus systems, compares them against
// the observability-based greedy baseline (Kim–Poor style), and
// cross-validates the results with the algebraic protection condition of
// Bobba et al.
package main

import (
	"errors"
	"fmt"
	"log"

	"segrid/internal/baseline"
	"segrid/internal/core"
	"segrid/internal/grid"
	"segrid/internal/synth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== Paper Section IV-E scenarios (IEEE 14-bus) ==")
	for _, s := range []struct {
		scenario, budget int
	}{
		{1, 4}, {2, 4}, {2, 5}, {3, 5}, {3, 6},
	} {
		req, err := synth.CaseStudyRequirements(s.scenario, s.budget)
		if err != nil {
			return err
		}
		arch, err := synth.Synthesize(req)
		switch {
		case errors.Is(err, synth.ErrNoArchitecture):
			fmt.Printf("scenario %d, budget %d: no architecture exists\n", s.scenario, s.budget)
		case err != nil:
			return err
		default:
			fmt.Printf("scenario %d, budget %d: secure buses %v (%d iterations)\n",
				s.scenario, s.budget, arch.SecuredBuses, arch.Iterations)
		}
	}

	fmt.Println()
	fmt.Println("== SMT synthesis vs greedy observability baseline ==")
	for _, name := range []string{"ieee14", "ieee30"} {
		sys, err := grid.Case(name)
		if err != nil {
			return err
		}
		meas := grid.NewMeasurementConfig(sys)
		greedy, err := baseline.GreedyBusProtection(meas, 1, 0)
		if err != nil {
			return err
		}

		// Head-to-head at the greedy baseline's budget. Eq. 30 pruning is
		// off here: it forbids adjacent-bus pairs, a restriction the greedy
		// baseline doesn't respect, so the candidate spaces must match for
		// a fair size comparison.
		attack := core.NewScenario(sys)
		attack.AnyState = true
		req := &synth.Requirements{
			Attack:          attack,
			MaxSecuredBuses: len(greedy),
		}
		arch, err := synth.Synthesize(req)
		if err != nil {
			return err
		}
		fmt.Printf("%s: greedy baseline secures %d buses %v\n", name, len(greedy), greedy)
		fmt.Printf("%s: SMT synthesis secures %d buses %v\n", name, len(arch.SecuredBuses), arch.SecuredBuses)

		// Cross-validate with the algebraic rank condition.
		check := grid.NewMeasurementConfig(sys)
		for _, j := range arch.SecuredBuses {
			if err := check.SecureBus(j); err != nil {
				return err
			}
		}
		ok, err := baseline.ProtectsAllStates(check, 1)
		if err != nil {
			return err
		}
		fmt.Printf("%s: algebraic (Bobba et al.) cross-check of SMT architecture: protects = %v\n\n", name, ok)
	}
	return nil
}
