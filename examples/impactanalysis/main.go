// Impactanalysis chains the full pipeline the paper motivates: a stealthy
// UFDI attack from the formal model corrupts the operator's state estimate,
// the corrupted estimate yields phantom load values, and the operator's DC
// optimal power flow redispatches against them — with real cost and flow
// consequences. It also shows the limits of the DC-crafted attack against
// an AC estimator (approximate stealthiness).
package main

import (
	"fmt"
	"log"
	"math"

	"segrid/internal/acflow"
	"segrid/internal/acse"
	"segrid/internal/core"
	"segrid/internal/dcflow"
	"segrid/internal/dcopf"
	"segrid/internal/grid"
	"segrid/internal/se"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys := grid.IEEE14()
	meas := grid.NewMeasurementConfig(sys)

	// Operating point: distributed loads served from buses 1 and 3.
	load := make([]float64, sys.Buses+1)
	total := 0.0
	for j := 2; j <= sys.Buses; j++ {
		load[j] = 0.07
		total += load[j]
	}
	load[1] = -total // net supply at the slack in the consumption convention
	angles, err := dcflow.SolveFlow(sys, load, 1)
	if err != nil {
		return err
	}
	z, err := dcflow.MeasureAll(sys, nil, angles)
	if err != nil {
		return err
	}

	// The formal model finds a stealthy attack on states 12, 13, 14.
	sc := core.NewScenario(sys)
	sc.TargetStates = []int{12, 13, 14}
	res, err := core.Verify(sc)
	if err != nil {
		return err
	}
	if !res.Feasible {
		return fmt.Errorf("attack infeasible")
	}
	deltas, err := core.FloatMeasurementDeltas(sc, res)
	if err != nil {
		return err
	}
	// The model leaves the attack magnitude free; scale it to a realistic
	// 0.005 rad worst-case state shift (stealth is preserved under scaling
	// — the DC model is linear).
	maxShift := 0.0
	for bus := range res.StateChanges {
		maxShift = math.Max(maxShift, math.Abs(res.StateChangeFloat(bus)))
	}
	scale := 0.005 / maxShift
	attacked := append([]float64(nil), z...)
	for id := 1; id <= sys.NumMeasurements(); id++ {
		deltas[id] *= scale
		attacked[id] += deltas[id]
	}

	// The estimator accepts the attacked measurements…
	const sigma = 0.01
	est, err := se.NewEstimator(meas, se.Config{RefBus: 1, Sigma: sigma})
	if err != nil {
		return err
	}
	det, err := se.NewDetector(est, 0.05)
	if err != nil {
		return err
	}
	sol, err := est.Estimate(attacked)
	if err != nil {
		return err
	}
	fmt.Printf("attack on states 12–14: %d measurements altered, BDD detected: %v\n",
		len(res.AlteredMeasurements), det.BadDataDetected(sol))

	// …and the iterative LNR identification finds nothing to remove.
	report, err := est.IdentifyBadData(attacked, 3.5, 5)
	if err != nil {
		return err
	}
	fmt.Printf("LNR identification removed: %v (stealthy injections leave residuals clean)\n",
		report.Removed)

	// The corrupted estimate yields phantom loads.
	zEst, err := dcflow.MeasureAll(sys, nil, sol.Angles)
	if err != nil {
		return err
	}
	l := sys.NumLines()
	phantomLoad := make([]float64, sys.Buses+1)
	honestLoad := make([]float64, sys.Buses+1)
	for j := 2; j <= sys.Buses; j++ {
		phantomLoad[j] = math.Max(zEst[2*l+j], 0)
		honestLoad[j] = load[j]
	}
	shift, worstBus := 0.0, 0
	worst := 0.0
	for j := 2; j <= sys.Buses; j++ {
		d := math.Abs(phantomLoad[j] - honestLoad[j])
		shift += d
		if d > worst {
			worst, worstBus = d, j
		}
	}
	fmt.Printf("phantom load: Σ|Δload| = %.4f p.u., largest at bus %d (%+.4f p.u.)\n",
		shift, worstBus, phantomLoad[worstBus]-honestLoad[worstBus])

	// Dispatch against honest vs phantom loads.
	gens := []dcopf.Generator{
		{Bus: 1, MinP: 0, MaxP: 1.2, Cost: 20},
		{Bus: 3, MinP: 0, MaxP: 0.8, Cost: 35},
	}
	limits := make([]float64, sys.NumLines()+1)
	for i := 1; i <= sys.NumLines(); i++ {
		limits[i] = 1.0
	}
	honest, err := (&dcopf.Case{Sys: sys, Gens: gens, Load: honestLoad, LineLimit: limits, RefBus: 1}).Solve()
	if err != nil {
		return err
	}
	poisoned, err := (&dcopf.Case{Sys: sys, Gens: gens, Load: phantomLoad, LineLimit: limits, RefBus: 1}).Solve()
	if err != nil {
		return err
	}
	flowShift := 0.0
	for i := 1; i <= sys.NumLines(); i++ {
		flowShift += math.Abs(poisoned.Flows[i] - honest.Flows[i])
	}
	fmt.Printf("dispatch cost: honest %.3f vs poisoned %.3f (Δ %.3f); Σ|Δflow| = %.3f p.u.\n",
		honest.Cost, poisoned.Cost, poisoned.Cost-honest.Cost, flowShift)

	// Finally: the same DC-crafted attack against an AC estimator is only
	// approximately stealthy — the residual grows with magnitude.
	n, err := acflow.FromDC(sys, 0.1, 0.0)
	if err != nil {
		return err
	}
	p := make([]float64, sys.Buses+1)
	q := make([]float64, sys.Buses+1)
	for j := 2; j <= sys.Buses; j++ {
		p[j] = -load[j]
		q[j] = -0.02
	}
	acState, err := n.Solve(acflow.FlowCase{Slack: 1, SlackV: 1.02, P: p, Q: q})
	if err != nil {
		return err
	}
	ms := acse.FullMeasurementSet(n)
	acClean, err := acse.MeasureAll(n, acState, ms)
	if err != nil {
		return err
	}
	acEst, err := acse.NewEstimator(n, ms, 1, sigma)
	if err != nil {
		return err
	}
	acDet, err := acse.NewDetector(acEst, 0.05)
	if err != nil {
		return err
	}
	fmt.Println("DC-crafted attack against the AC estimator:")
	for _, scale := range []float64{1, 20, 100} {
		acz := append([]float64(nil), acClean...)
		for i, m := range ms {
			switch m.Kind {
			case acse.MeasPFlowFrom:
				acz[i] += scale * deltas[m.Ref]
			case acse.MeasPFlowTo:
				acz[i] += scale * deltas[l+m.Ref]
			case acse.MeasPInj:
				acz[i] -= scale * deltas[2*l+m.Ref]
			}
		}
		acSol, err := acEst.Estimate(acz)
		if err != nil {
			fmt.Printf("  scale %.2f: estimator diverged (%v)\n", scale, err)
			continue
		}
		fmt.Printf("  scale %.2f: J = %10.2f (τ = %.1f) detected: %v\n",
			scale, acSol.J, acDet.Threshold(), acDet.BadDataDetected(acSol))
	}
	return nil
}
