// Casestudy replays the paper's Section III-I attack case study on the
// IEEE 14-bus system: Objective 1 (attack states 9 and 10 under resource
// limits) and Objective 2 (attack state 12 alone, defeat a protected
// measurement with topology poisoning).
package main

import (
	"log"
	"os"

	"segrid/internal/experiments"
)

func main() {
	cfg := experiments.Config{Out: os.Stdout}
	if err := experiments.CaseStudyAttacks(cfg); err != nil {
		log.Fatal(err)
	}
}
